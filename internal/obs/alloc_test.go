//go:build !race

package obs

import (
	"io"
	"testing"
)

// The race detector's instrumentation allocates, so the steady-state
// zero-allocation property is asserted only in non-race builds (mirroring
// internal/core's hot-path tests).

// Emit must be allocation-free in steady state — events are passed by
// value, counters live in a fixed array, the ring stores by copy, and the
// JSONL encoder reuses its buffer — so attaching an observer cannot break
// the engines' zero-alloc iteration guarantee.
func TestEmitSteadyStateDoesNotAllocate(t *testing.T) {
	o := New(Options{RingSize: 8})
	o.AttachSink(NewJSONLSink(io.Discard))
	ev := Event{TimeUnixNano: 1, Engine: EngineCore, Iter: 1, Scheduled: 100, Updates: 100, EdgeReads: 500, EdgeWrites: 50, RWConflicts: 3, WWConflicts: 1, Residual: 0.125, BarrierWaitNanos: 10, DurationNanos: 100}
	for i := 0; i < 16; i++ { // warm: fill the ring, grow the JSONL buffer
		o.Emit(ev)
	}
	if avg := testing.AllocsPerRun(200, func() { o.Emit(ev) }); avg > 0 {
		t.Errorf("Emit allocates %.2f per call in steady state, want 0", avg)
	}
}

// A zero TimeUnixNano makes Emit stamp the wall clock; that path must stay
// allocation-free too, since every engine emits unstamped events.
func TestEmitTimestampPathDoesNotAllocate(t *testing.T) {
	o := New(Options{RingSize: 8})
	ev := Event{Engine: EngineAsync, Updates: 1}
	for i := 0; i < 16; i++ {
		o.Emit(ev)
	}
	if avg := testing.AllocsPerRun(200, func() { o.Emit(ev) }); avg > 0 {
		t.Errorf("Emit (time-stamping path) allocates %.2f per call, want 0", avg)
	}
}

// Events carrying delay quantiles take the same fold/ring/window path and
// must stay allocation-free — the nosync executor emits them per sample
// window on the hot path.
func TestEmitWithDelayFieldsDoesNotAllocate(t *testing.T) {
	o := New(Options{RingSize: 8})
	o.AttachSink(NewJSONLSink(io.Discard))
	ev := Event{TimeUnixNano: 1, Engine: EngineNoSync, Updates: 4096, Steals: 3,
		IdleTransitions: 1, Residual: 0.01, DelayP50: 2, DelayP99: 40, DelayMax: 512}
	for i := 0; i < 16; i++ {
		o.Emit(ev)
	}
	if avg := testing.AllocsPerRun(200, func() { o.Emit(ev) }); avg > 0 {
		t.Errorf("Emit (delay fields) allocates %.2f per call, want 0", avg)
	}
}

// The delay-clock hot path — Stamp on publish, ObserveRead on read, Advance
// per epoch — must be allocation-free: it runs inside every edge access of
// an observed run. Hist snapshots return by value, so even the observation
// plane allocates nothing per snapshot.
func TestDelayClockHotPathDoesNotAllocate(t *testing.T) {
	c := NewDelayClock(2, 16)
	if avg := testing.AllocsPerRun(500, func() {
		c.Advance()
		c.Stamp(5)
		c.ObserveRead(1, 5)
	}); avg > 0 {
		t.Errorf("DelayClock hot path allocates %.2f per round, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		h := c.Hist()
		_ = h.Quantile(0.99)
		_ = h.Max()
	}); avg > 0 {
		t.Errorf("DelayClock.Hist allocates %.2f per snapshot, want 0", avg)
	}
	// The disabled state is one pointer test.
	var nilClock *DelayClock
	if avg := testing.AllocsPerRun(500, func() {
		nilClock.Stamp(5)
		nilClock.ObserveRead(0, 5)
	}); avg > 0 {
		t.Errorf("nil DelayClock allocates %.2f per round, want 0", avg)
	}
}

// Residual observation runs at every vertex commit of an observed run; both
// the numeric-delta and discrete paths must be allocation-free, as must the
// disabled (nil) state.
func TestResidualObserveDoesNotAllocate(t *testing.T) {
	delta := func(old, new uint64) float64 { return float64(new) - float64(old) }
	r := NewResidualEstimator(2, delta)
	if avg := testing.AllocsPerRun(500, func() { r.Observe(1, 10, 11) }); avg > 0 {
		t.Errorf("Observe (numeric) allocates %.2f per call, want 0", avg)
	}
	d := NewResidualEstimator(1, nil)
	if avg := testing.AllocsPerRun(500, func() { d.Observe(0, 1, 2) }); avg > 0 {
		t.Errorf("Observe (discrete) allocates %.2f per call, want 0", avg)
	}
	var nilR *ResidualEstimator
	if avg := testing.AllocsPerRun(500, func() { nilR.Observe(0, 1, 2) }); avg > 0 {
		t.Errorf("nil Observe allocates %.2f per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { _ = r.Totals() }); avg > 0 {
		t.Errorf("Totals allocates %.2f per snapshot, want 0", avg)
	}
}
