package obs

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// /readyz fails closed: with no readiness source (including the nil
// observer), a load balancer must NOT route traffic.
func TestReadyzFailsClosedWithoutSource(t *testing.T) {
	for _, tc := range []struct {
		name string
		o    *Observer
	}{
		{"enabled-no-source", New(Options{})},
		{"nil", nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, hdr, body := doGet(t, tc.o.Handler(), "/readyz")
			if code != http.StatusServiceUnavailable {
				t.Fatalf("/readyz = %d, want 503", code)
			}
			if ct := hdr.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("/readyz Content-Type = %q", ct)
			}
			var v struct {
				Ready  bool   `json:"ready"`
				Reason string `json:"reason"`
			}
			if err := json.Unmarshal([]byte(body), &v); err != nil {
				t.Fatalf("/readyz is not JSON: %v\n%s", err, body)
			}
			if v.Ready || v.Reason == "" {
				t.Fatalf("/readyz verdict = %+v, want not-ready with a reason", v)
			}
		})
	}
}

// /readyz is the conjunction of the installed checks; /healthz stays 200
// throughout (liveness is not readiness).
func TestReadyzReflectsChecks(t *testing.T) {
	o := New(Options{})
	h := o.Handler()
	graphResident, engineStalled := false, false
	o.SetReadiness(func() []ReadyCheck {
		return []ReadyCheck{
			{Name: "graph", OK: graphResident, Detail: "graph resident"},
			{Name: "engine", OK: !engineStalled, Detail: "engine not stalled"},
		}
	})

	if code, _, _ := doGet(t, h, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with failing check = %d, want 503", code)
	}
	if code, _, _ := doGet(t, h, "/healthz"); code != http.StatusOK {
		t.Fatal("/healthz must stay 200 while not ready")
	}

	graphResident = true
	code, _, body := doGet(t, h, "/readyz")
	if code != http.StatusOK {
		t.Fatalf("/readyz with all checks passing = %d, want 200\n%s", code, body)
	}
	var v struct {
		Ready  bool         `json:"ready"`
		Checks []ReadyCheck `json:"checks"`
	}
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if !v.Ready || len(v.Checks) != 2 {
		t.Fatalf("/readyz verdict = %+v", v)
	}

	engineStalled = true
	if code, _, _ := doGet(t, h, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatal("/readyz must flip back to 503 when a check regresses")
	}

	o.SetReadiness(nil)
	if code, _, _ := doGet(t, h, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatal("/readyz must fail closed after the source is uninstalled")
	}
}

// Per-worker supervision counters appear on /metrics once a source is
// installed, one labeled series per worker.
func TestMetricsIncludeWorkerStats(t *testing.T) {
	o := New(Options{})
	var sb strings.Builder
	o.WriteMetrics(&sb)
	if strings.Contains(sb.String(), "ndgraph_worker_") {
		t.Fatal("worker series rendered with no source installed")
	}

	o.SetWorkerStatsSource(func() []WorkerStats {
		return []WorkerStats{
			{Worker: "0", Heartbeats: 12, Retransmits: 3, Recoveries: 1, Messages: 500, Adopted: 80, Unacked: 2},
			{Worker: "1", Heartbeats: 11, Messages: 498},
		}
	})
	sb.Reset()
	o.WriteMetrics(&sb)
	text := sb.String()
	for _, want := range []string{
		`ndgraph_worker_heartbeats_total{worker="0"} 12`,
		`ndgraph_worker_retransmits_total{worker="0"} 3`,
		`ndgraph_worker_recoveries_total{worker="0"} 1`,
		`ndgraph_worker_messages_total{worker="1"} 498`,
		`ndgraph_worker_adopted_total{worker="0"} 80`,
		`ndgraph_worker_unacked{worker="0"} 2`,
		"# TYPE ndgraph_worker_unacked gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// The netdist engine kind is part of the closed enum: named in labels and
// included in the full inventory.
func TestNetdistEngineKind(t *testing.T) {
	if EngineNetdist.String() != "netdist" {
		t.Fatalf("EngineNetdist.String() = %q", EngineNetdist.String())
	}
	o := New(Options{})
	o.Emit(Event{Engine: EngineNetdist, Messages: 7})
	var sb strings.Builder
	o.WriteMetrics(&sb)
	if !strings.Contains(sb.String(), `ndgraph_messages_total{engine="netdist"} 7`) {
		t.Fatal("/metrics missing the netdist engine series")
	}
}
