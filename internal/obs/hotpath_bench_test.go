// Benchmarks for the observation hot path — the per-event cost an engine
// pays when observation is ON. (When it is OFF the cost is a single
// nil-receiver pointer test, and alloc_test.go proves the engine hot paths
// stay 0 allocs/op.) Every op here must report 0 allocs/op too: the delay
// clocks and residual stripes allocate only at construction.
package obs

import (
	"math"
	"sync/atomic"
	"testing"
)

// BenchmarkDelayClockStampObserve is the single-worker publish/read round
// trip: one Advance, one Stamp, one ObserveRead — the full delay-clock cost
// of one executed update that reads one published value.
func BenchmarkDelayClockStampObserve(b *testing.B) {
	c := NewDelayClock(1, 1<<12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Advance()
		slot := uint32(i) & (1<<12 - 1)
		c.Stamp(slot)
		c.ObserveRead(0, slot)
	}
}

// BenchmarkDelayClockObserveReadParallel contends the shared epoch counter
// and stamp array the way a work-stealing run does: every worker reads
// slots stamped by the others while the epoch advances underneath.
func BenchmarkDelayClockObserveReadParallel(b *testing.B) {
	const workers = 8
	c := NewDelayClock(workers, 1<<12)
	var next atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		w := int(next.Add(1)-1) % workers
		i := uint32(w)
		for pb.Next() {
			i++
			slot := i & (1<<12 - 1)
			c.Advance()
			c.Stamp(slot)
			c.ObserveRead(w, slot)
		}
	})
}

// BenchmarkResidualObserve is one committed transition through the striped
// estimator with a real float delta function — the per-commit cost of the
// ε-aware stopping rule's measurement half.
func BenchmarkResidualObserve(b *testing.B) {
	delta := func(old, new uint64) float64 {
		return math.Abs(math.Float64frombits(new) - math.Float64frombits(old))
	}
	r := NewResidualEstimator(1, delta)
	old := math.Float64bits(1.0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		new := math.Float64bits(1.0 + float64(i&1023)*1e-6)
		r.Observe(0, old, new)
		old = new
	}
}
