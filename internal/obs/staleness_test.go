package obs

import (
	"sync"
	"testing"
)

// Staleness of 0..15 epochs must be measured exactly: the barrier engines
// live entirely in that range (a read is at most one iteration stale), so
// bucket-resolution error there would blur the core-vs-nosync contrast the
// staleness experiment reports.
func TestDelayBucketExactRange(t *testing.T) {
	for d := int64(0); d < delayExact; d++ {
		if got := delayBucket(d); got != int(d) {
			t.Errorf("delayBucket(%d) = %d, want %d", d, got, d)
		}
		if got := delayBucketLow(int(d)); got != d {
			t.Errorf("delayBucketLow(%d) = %d, want %d", d, got, d)
		}
	}
}

// Every bucket's lower bound must map back to that bucket, and bucket
// assignment must be monotone in the staleness — otherwise quantile queries
// would report bounds that aren't bounds.
func TestDelayBucketBoundsRoundTrip(t *testing.T) {
	for b := 0; b < delayBuckets; b++ {
		low := delayBucketLow(b)
		if got := delayBucket(low); got != b {
			t.Errorf("delayBucket(delayBucketLow(%d)=%d) = %d", b, low, got)
		}
	}
	prev := -1
	for _, d := range []int64{0, 1, 15, 16, 17, 19, 20, 31, 32, 63, 64, 1000, 1 << 20, delayOverflowLow - 1, delayOverflowLow, 1 << 40} {
		b := delayBucket(d)
		if b < prev {
			t.Errorf("delayBucket not monotone: bucket(%d)=%d < previous %d", d, b, prev)
		}
		prev = b
		if low := delayBucketLow(b); low > d {
			t.Errorf("delayBucketLow(%d)=%d exceeds the bucketed staleness %d", b, low, d)
		}
	}
}

// Delays at and beyond 2^24 epochs saturate into the single overflow bucket
// instead of indexing out of range, and the histogram reports them.
func TestDelayHistOverflowSaturates(t *testing.T) {
	c := NewDelayClock(1, 1)
	for i := int64(0); i < delayOverflowLow+5; i++ {
		c.Advance()
	}
	c.ObserveRead(0, 0) // stamp never set: staleness = epoch - 0, deep overflow
	h := c.Hist()
	if h.Count() != 1 || h.Overflow() != 1 {
		t.Fatalf("Count=%d Overflow=%d, want 1/1", h.Count(), h.Overflow())
	}
	if got := h.Max(); got != delayOverflowLow {
		t.Errorf("Max = %d, want the overflow lower bound %d", got, delayOverflowLow)
	}
	if got := h.Quantile(0.99); got != delayOverflowLow {
		t.Errorf("Quantile(0.99) = %d, want %d", got, delayOverflowLow)
	}
}

// The staleness measured is epochs between Stamp and ObserveRead.
func TestDelayClockMeasuresPublishToRead(t *testing.T) {
	c := NewDelayClock(2, 4)
	c.Advance() // epoch 1
	c.Stamp(2)
	for i := 0; i < 5; i++ {
		c.Advance() // epoch 6
	}
	c.ObserveRead(0, 2) // staleness 5
	c.ObserveRead(1, 2) // again, other worker's shard
	c.Stamp(3)
	c.ObserveRead(0, 3) // staleness 0
	h := c.Hist()
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if got := h.Max(); got != 5 {
		t.Errorf("Max = %d, want 5", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %d, want 0", got)
	}
	if got := h.Quantile(1); got != 5 {
		t.Errorf("Quantile(1) = %d, want 5", got)
	}
}

// Hist merges the per-worker shards; each worker's observations land in its
// own shard (no contention) but the snapshot sees all of them.
func TestDelayHistMergesWorkerShards(t *testing.T) {
	const workers = 4
	c := NewDelayClock(workers, 1)
	c.Stamp(0)
	c.Advance()
	for w := 0; w < workers; w++ {
		for i := 0; i <= w; i++ {
			c.ObserveRead(w, 0) // staleness 1, w+1 times
		}
	}
	if got, want := c.Hist().Count(), int64(workers*(workers+1)/2); got != want {
		t.Errorf("merged Count = %d, want %d", got, want)
	}
	// Out-of-range worker indices fold into shard 0 instead of panicking.
	c.ObserveRead(-1, 0)
	c.ObserveRead(workers+7, 0)
	if got, want := c.Hist().Count(), int64(workers*(workers+1)/2+2); got != want {
		t.Errorf("Count after clamped workers = %d, want %d", got, want)
	}
}

func TestDelayClockReset(t *testing.T) {
	c := NewDelayClock(2, 2)
	c.Stamp(0)
	c.Advance()
	c.ObserveRead(1, 0)
	c.Reset()
	if c.Epoch() != 0 {
		t.Errorf("Epoch after Reset = %d", c.Epoch())
	}
	if got := c.Hist().Count(); got != 0 {
		t.Errorf("Count after Reset = %d", got)
	}
	// Stamps must be cleared too: a stale stamp from the previous run would
	// fabricate negative staleness (clamped to 0) for the new one.
	c.Advance()
	c.ObserveRead(0, 1)
	if got := c.Hist().Max(); got != 1 {
		t.Errorf("post-Reset staleness = %d, want 1", got)
	}
}

// Every DelayClock and DelayHist method must be safe on a nil receiver /
// zero value: engines guard observation with one pointer test.
func TestDelayClockNilSafe(t *testing.T) {
	var c *DelayClock
	c.Advance()
	c.Stamp(0)
	c.ObserveRead(0, 0)
	c.Reset()
	if c.Epoch() != 0 {
		t.Error("nil Epoch != 0")
	}
	h := c.Hist()
	if h.Count() != 0 || h.Overflow() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Error("nil clock's Hist is not zero")
	}
	// Out-of-range slots are ignored, not a panic.
	real := NewDelayClock(1, 2)
	real.Stamp(99)
	real.ObserveRead(0, 99)
	if real.Hist().Count() != 0 {
		t.Error("out-of-range slot was counted")
	}
}

// Concurrent advancing, stamping, reading, and snapshotting must be safe
// (run under -race in CI) and lose no observations.
func TestDelayClockConcurrent(t *testing.T) {
	const workers, perWorker = 4, 2000
	c := NewDelayClock(workers, 64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				slot := uint32((w*perWorker + i) % 64)
				c.Advance()
				c.Stamp(slot)
				c.ObserveRead(w, slot)
				if i%512 == 0 {
					_ = c.Hist() // snapshot while hot
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := c.Hist().Count(), int64(workers*perWorker); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
}

func TestResidualEstimatorNumericDelta(t *testing.T) {
	r := NewResidualEstimator(2, func(old, new uint64) float64 {
		d := float64(new) - float64(old)
		if d < 0 {
			d = -d
		}
		return d
	})
	r.Observe(0, 10, 13) // |Δ| = 3
	r.Observe(1, 5, 1)   // |Δ| = 4
	r.Observe(0, 7, 7)   // unchanged
	tot := r.Totals()
	if tot.Sum != 7 {
		t.Errorf("Sum = %g, want 7", tot.Sum)
	}
	if tot.Changed != 2 || tot.Updates != 3 {
		t.Errorf("Changed/Updates = %d/%d, want 2/3", tot.Changed, tot.Updates)
	}
	r.Reset()
	if tot := r.Totals(); tot.Sum != 0 || tot.Changed != 0 || tot.Updates != 0 {
		t.Errorf("Totals after Reset = %+v", tot)
	}
}

// With no delta function the estimator counts changed vertices — the
// discrete-kernel residual (WCC labels, BFS levels).
func TestResidualEstimatorDiscreteDefault(t *testing.T) {
	r := NewResidualEstimator(1, nil)
	r.Observe(0, 1, 2)
	r.Observe(0, 2, 2)
	r.Observe(0, 2, 9)
	tot := r.Totals()
	if tot.Sum != 2 || tot.Changed != 2 || tot.Updates != 3 {
		t.Errorf("Totals = %+v, want Sum=2 Changed=2 Updates=3", tot)
	}
}

func TestResidualEstimatorConcurrent(t *testing.T) {
	const workers, per = 4, 5000
	r := NewResidualEstimator(workers, func(old, new uint64) float64 { return 1 })
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Observe(w, 0, 1)
				if i%1024 == 0 {
					_ = r.Totals()
				}
			}
		}(w)
	}
	wg.Wait()
	tot := r.Totals()
	if want := float64(workers * per); tot.Sum != want {
		t.Errorf("Sum = %g, want %g", tot.Sum, want)
	}
	if tot.Updates != workers*per {
		t.Errorf("Updates = %d, want %d", tot.Updates, workers*per)
	}
}

func TestResidualEstimatorNilSafe(t *testing.T) {
	var r *ResidualEstimator
	r.Observe(0, 1, 2)
	r.Reset()
	if tot := r.Totals(); tot.Sum != 0 || tot.Updates != 0 {
		t.Error("nil estimator's Totals is not zero")
	}
	// Out-of-range workers clamp to stripe 0.
	real := NewResidualEstimator(2, nil)
	real.Observe(-3, 1, 2)
	real.Observe(17, 1, 2)
	if got := real.Totals().Updates; got != 2 {
		t.Errorf("Updates after clamped workers = %d, want 2", got)
	}
}
