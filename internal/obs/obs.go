// Package obs is the engine observability layer: a zero-overhead-when-
// disabled telemetry spine wired into every executor in the repository
// (core, async, shard, dist, push, autonomous).
//
// The paper's claims are all statements about *run-to-run behavior under
// nondeterminism* — conflict classes (Section III), convergence
// trajectories (Section II), result variance (Section V-C) — yet without a
// telemetry layer those signals are only visible post-hoc through ndbench
// tables. This package turns every run into an experiment: engines emit
// one Event per iteration (or per sample window, for the barrier-free
// executors) carrying the scheduled-set size, updates executed, edge
// read/write counts, sampled read-write/write-write conflict rates from
// the edgedata census, an active-fraction convergence residual, and the
// per-worker barrier-wait imbalance measured by sched.Pool.
//
// Design constraints, in priority order:
//
//  1. Disabled means free. Engines hold a *Observer that is nil by
//     default; the only cost on the hot path is one pointer test per
//     iteration barrier. The PR 2 zero-allocation guarantee is asserted
//     by tests with the observer both absent and attached.
//  2. Enabled means cheap. Emit performs no heap allocation in steady
//     state: events are passed by value, land in a fixed-size ring
//     buffer, and update a fixed array of per-engine atomic counters.
//     Sinks (JSONL, expvar, the /metrics endpoint) render from those two
//     structures; the JSONL encoder appends into a reusable buffer.
//  3. Stdlib only. The /metrics endpoint speaks the Prometheus text
//     exposition format from net/http, and /debug/pprof is wired from
//     net/http/pprof — no external dependencies.
package obs

import (
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// EngineKind identifies which executor emitted an event. The kinds are a
// closed enum so the observer can keep per-engine counters in a fixed
// array instead of an allocating map.
type EngineKind uint8

const (
	// EngineCore is the barrier-based coordinated-scheduling engine.
	EngineCore EngineKind = iota
	// EngineAsync is the pure asynchronous (barrier-free) executor.
	EngineAsync
	// EngineShard is the out-of-core parallel-sliding-windows engine.
	EngineShard
	// EngineDist is the simulated distributed message-passing executor.
	EngineDist
	// EnginePush is the push-mode (Ligra-style) engine.
	EnginePush
	// EngineAutonomous is the priority-driven executor.
	EngineAutonomous
	// EngineNetdist is the real-transport multi-process distributed
	// executor (TCP workers under coordinator supervision).
	EngineNetdist
	// EngineHybrid is the direction-optimizing push/pull engine.
	EngineHybrid
	// EngineNoSync is the barrier-free work-stealing executor (per-worker
	// deques, distributed termination detection).
	EngineNoSync

	numEngines
)

var engineNames = [numEngines]string{"core", "async", "shard", "dist", "push", "autonomous", "netdist", "hybrid", "nosync"}

// String names the engine kind as used in metric labels and JSONL.
func (k EngineKind) String() string {
	if int(k) < len(engineNames) {
		return engineNames[k]
	}
	return "unknown"
}

// EngineKinds lists every engine kind, in label order.
func EngineKinds() []EngineKind {
	out := make([]EngineKind, numEngines)
	for i := range out {
		out[i] = EngineKind(i)
	}
	return out
}

// Event is one telemetry sample. Barrier-based engines emit one per
// iteration; barrier-free executors (async, dist, autonomous) emit one per
// sample window plus a final one at quiescence. All counter fields are
// deltas for the sample, not cumulative totals — the observer accumulates.
//
// Events are passed and stored by value so the emit path performs no heap
// allocation.
type Event struct {
	// TimeUnixNano is the emit timestamp; Emit stamps it when zero.
	TimeUnixNano int64
	// Engine identifies the emitting executor.
	Engine EngineKind
	// Iter is the iteration (core/shard/push) or sample index (async,
	// dist, autonomous) of the sample.
	Iter int64
	// Scheduled is the scheduled-set size driving the sample: |S_n| for
	// barrier engines, the pending-queue depth for async/autonomous, the
	// in-flight message count for dist.
	Scheduled int64
	// Updates is the number of update functions executed in the sample.
	Updates int64
	// EdgeReads and EdgeWrites count edge-data accesses in the sample
	// (window-slot accesses for shard; pushes and wins for push mode).
	EdgeReads, EdgeWrites int64
	// RWConflicts and WWConflicts are the census-classified conflict edges
	// of the sample, when conflict sampling is enabled; -1 marks a sample
	// with no census attached.
	RWConflicts, WWConflicts int64
	// Residual is the convergence residual: the active fraction
	// (scheduled/|V|) unless the emitting engine computes something
	// sharper. It trends to zero as the computation converges.
	Residual float64
	// BarrierWaitNanos is the summed per-worker barrier-wait (load
	// imbalance) of the sample, from sched.Pool timing; 0 when the
	// dispatch ran inline or the executor has no barrier.
	BarrierWaitNanos int64
	// DurationNanos is the wall time of the sample.
	DurationNanos int64
	// Messages, Duplicates, and Drops are dist-engine deltas (deliveries,
	// injected duplicates, lossy-link retransmissions) for the sample;
	// zero for every other engine.
	Messages, Duplicates, Drops int64
	// Direction is the edge-traversal direction the sample executed with,
	// for engines that choose one per iteration (hybrid: "push" or
	// "pull"). Empty for single-direction engines. Always a compile-time
	// string constant so passing it allocates nothing.
	Direction string
	// TraceCommits and ContestedCommits are execution-path trace deltas
	// for the sample, present when a commit-logging trace recorder is
	// attached: edge commits recorded, and commits to an edge already
	// committed in the same iteration — the racy-winner sites under
	// nondeterministic execution. Zero when tracing is off.
	TraceCommits, ContestedCommits int64
	// Steals and IdleTransitions are work-stealing deltas (successful
	// steals from another worker's deque, and busy→idle transitions) for
	// the sample; zero for engines without work stealing.
	Steals, IdleTransitions int64
	// DelayP50, DelayP99, and DelayMax are read-staleness quantiles (in
	// epochs) from the emitting engine's DelayClock histogram at sample
	// time — the live empirical delay bound per Blanco et al. All zero
	// when no delay clock is attached.
	DelayP50, DelayP99, DelayMax int64
}

// engineCounters aggregates one engine's events. All fields are atomics so
// Emit never takes a lock to update them and /metrics renders without
// stopping emitters.
type engineCounters struct {
	samples     atomic.Int64
	iterations  atomic.Int64 // highest Iter seen + 1
	updates     atomic.Int64
	edgeReads   atomic.Int64
	edgeWrites  atomic.Int64
	rwConflicts atomic.Int64
	wwConflicts atomic.Int64
	barrierWait atomic.Int64 // nanoseconds
	duration    atomic.Int64 // nanoseconds
	messages    atomic.Int64
	duplicates  atomic.Int64
	drops       atomic.Int64
	traceCommit atomic.Int64
	contested   atomic.Int64
	steals      atomic.Int64
	idleTrans   atomic.Int64
	scheduled   atomic.Int64  // last sample's value (gauge)
	residual    atomic.Uint64 // last sample's value (float64 bits, gauge)
	delayP50    atomic.Int64  // last sample's staleness quantiles (gauges)
	delayP99    atomic.Int64
	delayMax    atomic.Int64
}

// Options configures an Observer.
type Options struct {
	// RingSize is the event ring-buffer capacity; 0 means 1024. The ring
	// keeps the most recent events for sinks attached late and for the
	// /events endpoint.
	RingSize int
	// SampleConflicts asks engines that support the edgedata census to
	// enable it and report per-iteration RW/WW conflict rates. It costs
	// one atomic OR per edge access in the core engine, so it is opt-in.
	SampleConflicts bool
	// WindowEvery is the time-window width of the per-engine window
	// aggregation (the residual/staleness curves served by /statusz);
	// 0 means one second. The observer keeps the most recent windowKeep
	// closed windows per run, plus the pending partial window, which
	// Close flushes.
	WindowEvery time.Duration
}

// windowKeep is the closed-window ring capacity (shared by all engines).
const windowKeep = 64

// WindowStat is one closed aggregation window of one engine's events — a
// point on the live residual/staleness curve. Counter fields are sums over
// the window; Scheduled, Residual, and the Delay quantiles are the last
// sample's values.
type WindowStat struct {
	Engine          string  `json:"engine"`
	StartUnixNano   int64   `json:"start_unix_nano"`
	EndUnixNano     int64   `json:"end_unix_nano"`
	Samples         int64   `json:"samples"`
	Updates         int64   `json:"updates"`
	EdgeReads       int64   `json:"edge_reads"`
	EdgeWrites      int64   `json:"edge_writes"`
	Steals          int64   `json:"steals"`
	IdleTransitions int64   `json:"idle_transitions"`
	Scheduled       int64   `json:"scheduled"`
	Residual        float64 `json:"residual"`
	DelayP50        int64   `json:"delay_p50"`
	DelayP99        int64   `json:"delay_p99"`
	DelayMax        int64   `json:"delay_max"`
}

// Observer receives events from engines and fans them out to counters, the
// ring buffer, and any attached sinks. A nil *Observer is the disabled
// state: every method is safe to call on nil and does nothing, so engines
// guard their telemetry with a single pointer test.
//
// One Observer may be shared by any number of engines of any kinds; Emit
// is safe for concurrent use.
type Observer struct {
	opts Options

	counters [numEngines]engineCounters

	mu    sync.Mutex
	ring  []Event
	seq   uint64 // events ever emitted (ring head = seq % len)
	sinks []Sink
	// traceSource, when installed via SetTraceSource, serves the /trace
	// download endpoint.
	traceSource func(io.Writer) error
	// readiness, when installed via SetReadiness, drives the /readyz
	// endpoint's verdict.
	readiness func() []ReadyCheck
	// workerStats, when installed via SetWorkerStatsSource, adds
	// per-worker distributed-run counters to /metrics.
	workerStats func() []WorkerStats
	// phase is the coarse lifecycle label engines report via SetPhase,
	// shown by /statusz.
	phase string
	// delaySources holds the per-engine DelayClock snapshots installed via
	// SetDelaySource, rendered by /statusz and /metrics.
	delaySources [numEngines]func() DelayHist
	// pending accumulates the current (not yet closed) aggregation window
	// per engine; StartUnixNano == 0 marks an empty slot. windows is the
	// ring of closed windows (ordered oldest-first via winSeq).
	pending [numEngines]WindowStat
	windows []WindowStat
	winSeq  uint64

	startUnixNano int64
}

// ReadyCheck is one named readiness condition reported by /readyz. Unlike
// /healthz (pure liveness: the process answers), readiness is the
// application-level "safe to route traffic here" verdict — a graph is
// resident, the engine is not stalled, the distributed workers are
// supervised. A load balancer or the netdist supervisor gates traffic on
// the conjunction of all checks.
type ReadyCheck struct {
	// Name identifies the condition (e.g. "graph", "engine", "workers").
	Name string `json:"name"`
	// OK reports whether the condition currently holds.
	OK bool `json:"ok"`
	// Detail optionally explains the current state ("4/4 workers alive").
	Detail string `json:"detail,omitempty"`
}

// SetReadiness installs the /readyz source: a function returning the
// current readiness checks, called per request. Passing nil uninstalls it
// (the endpoint then reports not-ready). Safe on nil (no-op).
func (o *Observer) SetReadiness(fn func() []ReadyCheck) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.readiness = fn
	o.mu.Unlock()
}

func (o *Observer) readinessFn() func() []ReadyCheck {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.readiness
}

// WorkerStats is one distributed worker's counter snapshot, as reported by
// the netdist coordinator's supervision loop and rendered per-worker on
// /metrics.
type WorkerStats struct {
	// Worker labels the metrics series (conventionally the worker index).
	Worker string `json:"worker"`
	// Heartbeats counts heartbeats the supervisor received from the worker.
	Heartbeats int64 `json:"heartbeats"`
	// Retransmits counts data batches the worker re-sent after an ack
	// timeout (at-least-once delivery working its retry path).
	Retransmits int64 `json:"retransmits"`
	// Recoveries counts supervised restarts of the worker (crash → relaunch
	// → checkpoint restore → boundary repair).
	Recoveries int64 `json:"recoveries"`
	// Messages counts data messages the worker delivered.
	Messages int64 `json:"messages"`
	// Adopted counts deliveries that improved a vertex (monotone merges).
	Adopted int64 `json:"adopted"`
	// Unacked is the worker's current count of in-flight unacknowledged
	// batches (a gauge; non-zero under partition or loss).
	Unacked int64 `json:"unacked"`
}

// SetWorkerStatsSource installs the per-worker /metrics source: a function
// returning a snapshot of every worker's counters, called per scrape.
// Passing nil uninstalls it. Safe on nil (no-op).
func (o *Observer) SetWorkerStatsSource(fn func() []WorkerStats) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.workerStats = fn
	o.mu.Unlock()
}

func (o *Observer) workerStatsFn() func() []WorkerStats {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.workerStats
}

// New builds an Observer.
func New(opts Options) *Observer {
	if opts.RingSize <= 0 {
		opts.RingSize = 1024
	}
	if opts.WindowEvery <= 0 {
		opts.WindowEvery = time.Second
	}
	return &Observer{
		opts:          opts,
		ring:          make([]Event, 0, opts.RingSize),
		windows:       make([]WindowStat, 0, windowKeep),
		startUnixNano: time.Now().UnixNano(),
	}
}

// Enabled reports whether o is collecting (non-nil).
func (o *Observer) Enabled() bool { return o != nil }

// SampleConflicts reports whether engines should attach the conflict
// census for this observer.
func (o *Observer) SampleConflicts() bool { return o != nil && o.opts.SampleConflicts }

// Emit records one event: it stamps the time if unset, folds the event
// into the per-engine counters, stores it in the ring, and hands it to
// every attached sink. Emit on a nil Observer is a no-op. The event is
// taken by value and the steady-state path performs no heap allocation.
func (o *Observer) Emit(ev Event) {
	if o == nil {
		return
	}
	if ev.TimeUnixNano == 0 {
		ev.TimeUnixNano = time.Now().UnixNano()
	}
	k := ev.Engine
	if k >= numEngines {
		k = numEngines - 1
	}
	c := &o.counters[k]
	c.samples.Add(1)
	if n := ev.Iter + 1; n > c.iterations.Load() {
		c.iterations.Store(n)
	}
	c.updates.Add(ev.Updates)
	c.edgeReads.Add(ev.EdgeReads)
	c.edgeWrites.Add(ev.EdgeWrites)
	if ev.RWConflicts > 0 {
		c.rwConflicts.Add(ev.RWConflicts)
	}
	if ev.WWConflicts > 0 {
		c.wwConflicts.Add(ev.WWConflicts)
	}
	c.barrierWait.Add(ev.BarrierWaitNanos)
	c.duration.Add(ev.DurationNanos)
	c.messages.Add(ev.Messages)
	c.duplicates.Add(ev.Duplicates)
	c.drops.Add(ev.Drops)
	c.traceCommit.Add(ev.TraceCommits)
	c.contested.Add(ev.ContestedCommits)
	c.steals.Add(ev.Steals)
	c.idleTrans.Add(ev.IdleTransitions)
	c.scheduled.Store(ev.Scheduled)
	c.residual.Store(floatBits(ev.Residual))
	c.delayP50.Store(ev.DelayP50)
	c.delayP99.Store(ev.DelayP99)
	c.delayMax.Store(ev.DelayMax)

	o.mu.Lock()
	// Sinks (and the window fold) receive a pointer into the ring slot, not
	// &ev: taking ev's address across the Sink interface would force the
	// (stack) event to escape, costing one heap allocation per Emit.
	var slot *Event
	if len(o.ring) < cap(o.ring) {
		o.ring = append(o.ring, ev)
		slot = &o.ring[len(o.ring)-1]
	} else {
		i := o.seq % uint64(cap(o.ring))
		o.ring[i] = ev
		slot = &o.ring[i]
	}
	o.seq++
	o.windowFoldLocked(k, slot)
	for _, s := range o.sinks {
		s.Consume(slot)
	}
	o.mu.Unlock()
}

// AttachSink adds a sink; subsequent events are delivered to it in emit
// order, serialized under the observer's lock. Safe on nil (no-op).
func (o *Observer) AttachSink(s Sink) {
	if o == nil || s == nil {
		return
	}
	o.mu.Lock()
	o.sinks = append(o.sinks, s)
	o.mu.Unlock()
}

// windowFoldLocked folds one event into its engine's pending aggregation
// window and rolls the window into the closed ring once it spans
// Options.WindowEvery. Caller holds o.mu; no allocation in steady state
// (the ring is preallocated at windowKeep and then overwritten in place).
func (o *Observer) windowFoldLocked(k EngineKind, ev *Event) {
	p := &o.pending[k]
	if p.StartUnixNano == 0 {
		*p = WindowStat{Engine: k.String(), StartUnixNano: ev.TimeUnixNano}
	}
	p.EndUnixNano = ev.TimeUnixNano
	p.Samples++
	p.Updates += ev.Updates
	p.EdgeReads += ev.EdgeReads
	p.EdgeWrites += ev.EdgeWrites
	p.Steals += ev.Steals
	p.IdleTransitions += ev.IdleTransitions
	p.Scheduled = ev.Scheduled
	p.Residual = ev.Residual
	p.DelayP50, p.DelayP99, p.DelayMax = ev.DelayP50, ev.DelayP99, ev.DelayMax
	if ev.TimeUnixNano-p.StartUnixNano >= int64(o.opts.WindowEvery) {
		o.rollWindowLocked(k)
	}
}

// rollWindowLocked moves engine k's pending window (if any) into the closed
// ring and clears the pending slot. Caller holds o.mu.
func (o *Observer) rollWindowLocked(k EngineKind) {
	p := &o.pending[k]
	if p.StartUnixNano == 0 {
		return
	}
	if len(o.windows) < cap(o.windows) {
		o.windows = append(o.windows, *p)
	} else {
		o.windows[o.winSeq%uint64(cap(o.windows))] = *p
	}
	o.winSeq++
	*p = WindowStat{}
}

// Windows returns the closed aggregation windows in emit order (oldest
// first), across all engines. The final partial window of a run is included
// once Close (or a later roll) has flushed it. Safe on nil (returns nil).
func (o *Observer) Windows() []WindowStat {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]WindowStat, 0, len(o.windows))
	if len(o.windows) < cap(o.windows) {
		return append(out, o.windows...)
	}
	head := int(o.winSeq % uint64(cap(o.windows)))
	out = append(out, o.windows[head:]...)
	return append(out, o.windows[:head]...)
}

// Close flushes the pending partial aggregation windows into the closed
// ring, then flushes and closes every attached sink, returning the first
// error. Without the window flush, a short run (or the tail of any run)
// whose final events never spanned a full WindowEvery would vanish from
// Windows() and /statusz at shutdown. The observer itself remains usable
// (counters keep accumulating) but the closed sinks are detached. Safe on
// nil.
func (o *Observer) Close() error {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	for k := EngineKind(0); k < numEngines; k++ {
		o.rollWindowLocked(k)
	}
	sinks := o.sinks
	o.sinks = nil
	o.mu.Unlock()
	var first error
	for _, s := range sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Events returns a copy of the ring buffer's contents in emit order
// (oldest first). Safe on nil (returns nil).
func (o *Observer) Events() []Event {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]Event, 0, len(o.ring))
	if len(o.ring) < cap(o.ring) {
		return append(out, o.ring...)
	}
	head := int(o.seq % uint64(cap(o.ring)))
	out = append(out, o.ring[head:]...)
	return append(out, o.ring[:head]...)
}

// EngineStats is a point-in-time summary of one engine's accumulated
// telemetry, as rendered by /metrics and the expvar export.
type EngineStats struct {
	Engine           string  `json:"engine"`
	Samples          int64   `json:"samples"`
	Iterations       int64   `json:"iterations"`
	Updates          int64   `json:"updates"`
	EdgeReads        int64   `json:"edge_reads"`
	EdgeWrites       int64   `json:"edge_writes"`
	RWConflicts      int64   `json:"rw_conflicts"`
	WWConflicts      int64   `json:"ww_conflicts"`
	BarrierWait      int64   `json:"barrier_wait_ns"`
	Duration         int64   `json:"duration_ns"`
	Messages         int64   `json:"messages"`
	Duplicates       int64   `json:"duplicates"`
	Drops            int64   `json:"drops"`
	TraceCommits     int64   `json:"trace_commits"`
	ContestedCommits int64   `json:"contested_commits"`
	Steals           int64   `json:"steals"`
	IdleTransitions  int64   `json:"idle_transitions"`
	Scheduled        int64   `json:"scheduled_last"`
	Residual         float64 `json:"residual_last"`
	DelayP50         int64   `json:"delay_p50_last"`
	DelayP99         int64   `json:"delay_p99_last"`
	DelayMax         int64   `json:"delay_max_last"`
}

// Stats snapshots the accumulated counters for every engine kind, in label
// order. Safe on nil (returns nil).
func (o *Observer) Stats() []EngineStats {
	if o == nil {
		return nil
	}
	out := make([]EngineStats, numEngines)
	for k := range o.counters {
		c := &o.counters[k]
		out[k] = EngineStats{
			Engine:           EngineKind(k).String(),
			Samples:          c.samples.Load(),
			Iterations:       c.iterations.Load(),
			Updates:          c.updates.Load(),
			EdgeReads:        c.edgeReads.Load(),
			EdgeWrites:       c.edgeWrites.Load(),
			RWConflicts:      c.rwConflicts.Load(),
			WWConflicts:      c.wwConflicts.Load(),
			BarrierWait:      c.barrierWait.Load(),
			Duration:         c.duration.Load(),
			Messages:         c.messages.Load(),
			Duplicates:       c.duplicates.Load(),
			Drops:            c.drops.Load(),
			TraceCommits:     c.traceCommit.Load(),
			ContestedCommits: c.contested.Load(),
			Steals:           c.steals.Load(),
			IdleTransitions:  c.idleTrans.Load(),
			Scheduled:        c.scheduled.Load(),
			Residual:         floatFromBits(c.residual.Load()),
			DelayP50:         c.delayP50.Load(),
			DelayP99:         c.delayP99.Load(),
			DelayMax:         c.delayMax.Load(),
		}
	}
	return out
}

// SetPhase records the coarse lifecycle label engines report ("nosync:
// running", "netdist: loading graph", ...), shown live by /statusz. Engines
// pass compile-time string constants, so reporting allocates nothing beyond
// the call. Safe on nil (no-op).
func (o *Observer) SetPhase(phase string) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.phase = phase
	o.mu.Unlock()
}

// Phase returns the most recently reported lifecycle label. Safe on nil.
func (o *Observer) Phase() string {
	if o == nil {
		return ""
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.phase
}

// SetDelaySource installs engine k's staleness-histogram snapshot function
// (conventionally the bound DelayClock.Hist of the engine's clock), called
// per /statusz render and /metrics scrape. Passing nil uninstalls it. Safe
// on nil (no-op).
func (o *Observer) SetDelaySource(k EngineKind, fn func() DelayHist) {
	if o == nil || k >= numEngines {
		return
	}
	o.mu.Lock()
	o.delaySources[k] = fn
	o.mu.Unlock()
}

// DelaySnapshot is one engine's staleness histogram, summarized for
// /statusz and the experiments.
type DelaySnapshot struct {
	Engine   string `json:"engine"`
	Count    int64  `json:"count"`
	Overflow int64  `json:"overflow"`
	P50      int64  `json:"p50"`
	P90      int64  `json:"p90"`
	P99      int64  `json:"p99"`
	Max      int64  `json:"max"`
}

// DelaySnapshots renders every installed delay source, in engine-label
// order, skipping engines with no source installed. Safe on nil.
func (o *Observer) DelaySnapshots() []DelaySnapshot {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	var fns [numEngines]func() DelayHist
	copy(fns[:], o.delaySources[:])
	o.mu.Unlock()
	var out []DelaySnapshot
	for k, fn := range fns {
		if fn == nil {
			continue
		}
		h := fn()
		out = append(out, DelaySnapshot{
			Engine:   EngineKind(k).String(),
			Count:    h.Count(),
			Overflow: h.Overflow(),
			P50:      h.Quantile(0.50),
			P90:      h.Quantile(0.90),
			P99:      h.Quantile(0.99),
			Max:      h.Max(),
		})
	}
	return out
}
