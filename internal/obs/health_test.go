package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func doGet(t *testing.T, h http.Handler, path string) (int, http.Header, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr.Code, rr.Header(), rr.Body.String()
}

func TestHealthzEndpoint(t *testing.T) {
	for _, tc := range []struct {
		name string
		o    *Observer
	}{
		{"enabled", New(Options{})},
		{"nil", nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, _, body := doGet(t, tc.o.Handler(), "/healthz")
			if code != http.StatusOK {
				t.Fatalf("/healthz = %d", code)
			}
			if strings.TrimSpace(body) != "ok" {
				t.Fatalf("/healthz body = %q", body)
			}
		})
	}
}

func TestBuildinfoEndpoint(t *testing.T) {
	for _, tc := range []struct {
		name string
		o    *Observer
	}{
		{"enabled", New(Options{})},
		{"nil", nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, hdr, body := doGet(t, tc.o.Handler(), "/buildinfo")
			if code != http.StatusOK {
				t.Fatalf("/buildinfo = %d", code)
			}
			if ct := hdr.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("/buildinfo Content-Type = %q", ct)
			}
			var info map[string]string
			if err := json.Unmarshal([]byte(body), &info); err != nil {
				t.Fatalf("/buildinfo is not JSON: %v\n%s", err, body)
			}
			if _, ok := info["available"]; !ok {
				t.Fatalf("/buildinfo lacks the available key: %v", info)
			}
			// Under `go test` build info is present, so the identity fields
			// must be populated.
			if info["available"] == "true" && info["go_version"] == "" {
				t.Fatalf("/buildinfo has no go_version: %v", info)
			}
		})
	}
}

func TestTraceEndpoint(t *testing.T) {
	o := New(Options{})
	h := o.Handler()
	if code, _, _ := doGet(t, h, "/trace"); code != http.StatusNotFound {
		t.Fatalf("/trace without a source = %d, want 404", code)
	}
	payload := []byte("NDTR-test-payload")
	o.SetTraceSource(func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	})
	code, hdr, body := doGet(t, h, "/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace with a source = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("/trace Content-Type = %q", ct)
	}
	if !strings.Contains(hdr.Get("Content-Disposition"), "run.ndt") {
		t.Fatalf("/trace Content-Disposition = %q", hdr.Get("Content-Disposition"))
	}
	if body != string(payload) {
		t.Fatalf("/trace body = %q", body)
	}
	o.SetTraceSource(nil)
	if code, _, _ := doGet(t, h, "/trace"); code != http.StatusNotFound {
		t.Fatalf("/trace after uninstall = %d, want 404", code)
	}
}

func TestMetricsIncludeTraceCounters(t *testing.T) {
	o := New(Options{})
	o.Emit(Event{Engine: EngineCore, TraceCommits: 7, ContestedCommits: 3})
	var sb strings.Builder
	o.WriteMetrics(&sb)
	text := sb.String()
	for _, want := range []string{
		fmt.Sprintf(`ndgraph_trace_commits_total{engine="core"} %d`, 7),
		fmt.Sprintf(`ndgraph_contested_commits_total{engine="core"} %d`, 3),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
