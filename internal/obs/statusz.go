// /statusz: the human-facing live progress plane. Where /metrics is a
// machine scrape of cumulative counters, /statusz answers "how is the run
// going right now" — phase, iteration/epoch progress, the windowed residual
// curve, staleness histogram quantiles from the delay clocks, steal/idle
// rates, and per-netdist-worker aggregates — as JSON by default and as a
// self-refreshing HTML page for a browser.
package obs

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strings"
	"time"
)

// statuszPayload is the JSON shape of /statusz.
type statuszPayload struct {
	Phase         string          `json:"phase"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	Engines       []EngineStats   `json:"engines"`
	Windows       []WindowStat    `json:"windows"`
	Delay         []DelaySnapshot `json:"delay"`
	Workers       []WorkerStats   `json:"workers,omitempty"`
}

// statusz assembles the live progress snapshot. Engines that have emitted
// nothing are filtered out so the view tracks the run, not the inventory
// (/metrics keeps the full inventory).
func (o *Observer) statusz() statuszPayload {
	p := statuszPayload{
		Phase:         o.Phase(),
		UptimeSeconds: float64(time.Now().UnixNano()-o.startUnixNano) / 1e9,
		Windows:       o.Windows(),
		Delay:         o.DelaySnapshots(),
	}
	for _, s := range o.Stats() {
		if s.Samples > 0 {
			p.Engines = append(p.Engines, s)
		}
	}
	if fn := o.workerStatsFn(); fn != nil {
		p.Workers = fn()
	}
	return p
}

// serveStatusz renders the progress plane: JSON unless the client asks for
// HTML (?format=html, or an Accept header preferring text/html).
func (o *Observer) serveStatusz(w http.ResponseWriter, r *http.Request) {
	p := o.statusz()
	format := r.URL.Query().Get("format")
	wantHTML := format == "html" ||
		(format == "" && strings.Contains(r.Header.Get("Accept"), "text/html"))
	if !wantHTML {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(p)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	writeStatuszHTML(w, p)
}

// sparkline renders values as a unicode block-bar string, scaled to the
// series maximum — enough to see the residual trend without a plotting
// stack.
func sparkline(vals []float64) string {
	const blocks = "▁▂▃▄▅▆▇█"
	if len(vals) == 0 {
		return ""
	}
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if max > 0 {
			i = int(v / max * 7)
			if i > 7 {
				i = 7
			}
			if i < 0 {
				i = 0
			}
		}
		b.WriteRune([]rune(blocks)[i])
	}
	return b.String()
}

func writeStatuszHTML(w http.ResponseWriter, p statuszPayload) {
	esc := html.EscapeString
	fmt.Fprint(w, `<!DOCTYPE html><html><head><meta charset="utf-8">`+
		`<meta http-equiv="refresh" content="2">`+
		`<title>ndgraph /statusz</title><style>`+
		`body{font-family:monospace;margin:1.5em}table{border-collapse:collapse;margin:0 0 1em}`+
		`td,th{border:1px solid #999;padding:2px 8px;text-align:right}th{background:#eee}`+
		`td:first-child,th:first-child{text-align:left}h2{margin:0.7em 0 0.3em}`+
		`</style></head><body><h1>ndgraph /statusz</h1>`)
	phase := p.Phase
	if phase == "" {
		phase = "(no phase reported)"
	}
	fmt.Fprintf(w, `<p>phase: <b>%s</b> &middot; uptime %.1fs</p>`, esc(phase), p.UptimeSeconds)

	fmt.Fprint(w, `<h2>engines</h2><table><tr><th>engine</th><th>iters</th><th>updates</th><th>scheduled</th><th>residual</th><th>steals</th><th>idle</th><th>delay p50/p99/max</th></tr>`)
	for _, s := range p.Engines {
		fmt.Fprintf(w, `<tr><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%.3g</td><td>%d</td><td>%d</td><td>%d / %d / %d</td></tr>`,
			esc(s.Engine), s.Iterations, s.Updates, s.Scheduled, s.Residual, s.Steals, s.IdleTransitions, s.DelayP50, s.DelayP99, s.DelayMax)
	}
	fmt.Fprint(w, `</table>`)

	if len(p.Delay) > 0 {
		fmt.Fprint(w, `<h2>read staleness (epochs)</h2><table><tr><th>engine</th><th>reads</th><th>p50</th><th>p90</th><th>p99</th><th>max</th><th>overflow</th></tr>`)
		for _, d := range p.Delay {
			fmt.Fprintf(w, `<tr><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td></tr>`,
				esc(d.Engine), d.Count, d.P50, d.P90, d.P99, d.Max, d.Overflow)
		}
		fmt.Fprint(w, `</table>`)
	}

	if len(p.Windows) > 0 {
		var resid []float64
		for _, win := range p.Windows {
			resid = append(resid, win.Residual)
		}
		fmt.Fprintf(w, `<h2>residual curve</h2><p>%s</p>`, sparkline(resid))
		fmt.Fprint(w, `<table><tr><th>engine</th><th>window end</th><th>samples</th><th>updates</th><th>steals</th><th>idle</th><th>residual</th><th>delay p99</th></tr>`)
		for _, win := range p.Windows {
			fmt.Fprintf(w, `<tr><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%.3g</td><td>%d</td></tr>`,
				esc(win.Engine), time.Unix(0, win.EndUnixNano).Format("15:04:05.000"),
				win.Samples, win.Updates, win.Steals, win.IdleTransitions, win.Residual, win.DelayP99)
		}
		fmt.Fprint(w, `</table>`)
	}

	if len(p.Workers) > 0 {
		fmt.Fprint(w, `<h2>netdist workers</h2><table><tr><th>worker</th><th>heartbeats</th><th>messages</th><th>adopted</th><th>retransmits</th><th>recoveries</th><th>unacked</th></tr>`)
		for _, ws := range p.Workers {
			fmt.Fprintf(w, `<tr><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td></tr>`,
				esc(ws.Worker), ws.Heartbeats, ws.Messages, ws.Adopted, ws.Retransmits, ws.Recoveries, ws.Unacked)
		}
		fmt.Fprint(w, `</table>`)
	}
	fmt.Fprint(w, `</body></html>`)
}
