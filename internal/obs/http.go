package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"time"
)

// WriteMetrics renders the accumulated per-engine counters in the
// Prometheus text exposition format. Every engine kind is rendered even at
// zero, so one scrape always shows the full executor inventory.
func (o *Observer) WriteMetrics(w io.Writer) {
	if o == nil {
		return
	}
	stats := o.Stats()
	writeHeader := func(name, help, typ string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	counter := func(name, help string, get func(EngineStats) int64) {
		writeHeader(name, help, "counter")
		for _, s := range stats {
			fmt.Fprintf(w, "%s{engine=%q} %d\n", name, s.Engine, get(s))
		}
	}
	gauge := func(name, help string, get func(EngineStats) string) {
		writeHeader(name, help, "gauge")
		for _, s := range stats {
			fmt.Fprintf(w, "%s{engine=%q} %s\n", name, s.Engine, get(s))
		}
	}
	counter("ndgraph_samples_total", "Telemetry events emitted.",
		func(s EngineStats) int64 { return s.Samples })
	counter("ndgraph_iterations_total", "Iterations (or sample windows) completed.",
		func(s EngineStats) int64 { return s.Iterations })
	counter("ndgraph_updates_total", "Vertex update functions executed.",
		func(s EngineStats) int64 { return s.Updates })
	counter("ndgraph_edge_reads_total", "Edge-data words read.",
		func(s EngineStats) int64 { return s.EdgeReads })
	counter("ndgraph_edge_writes_total", "Edge-data words written.",
		func(s EngineStats) int64 { return s.EdgeWrites })
	counter("ndgraph_rw_conflicts_total", "Census-classified read-write conflict edges.",
		func(s EngineStats) int64 { return s.RWConflicts })
	counter("ndgraph_ww_conflicts_total", "Census-classified write-write conflict edges.",
		func(s EngineStats) int64 { return s.WWConflicts })
	counter("ndgraph_barrier_wait_nanoseconds_total", "Summed per-worker barrier-wait (load imbalance).",
		func(s EngineStats) int64 { return s.BarrierWait })
	counter("ndgraph_busy_nanoseconds_total", "Wall time spent inside sampled iterations.",
		func(s EngineStats) int64 { return s.Duration })
	counter("ndgraph_messages_total", "Distributed messages delivered (including duplicates).",
		func(s EngineStats) int64 { return s.Messages })
	counter("ndgraph_duplicate_messages_total", "Distributed duplicate deliveries injected.",
		func(s EngineStats) int64 { return s.Duplicates })
	counter("ndgraph_dropped_messages_total", "Distributed deliveries lost and retransmitted.",
		func(s EngineStats) int64 { return s.Drops })
	counter("ndgraph_trace_commits_total", "Edge commits recorded by the execution-path trace.",
		func(s EngineStats) int64 { return s.TraceCommits })
	counter("ndgraph_contested_commits_total", "Trace-recorded commits to an edge already committed in the same iteration (racy-winner sites).",
		func(s EngineStats) int64 { return s.ContestedCommits })
	counter("ndgraph_steals_total", "Successful work-steals from another worker's deque.",
		func(s EngineStats) int64 { return s.Steals })
	counter("ndgraph_idle_transitions_total", "Worker busy-to-idle transitions (work-stealing executors).",
		func(s EngineStats) int64 { return s.IdleTransitions })
	gauge("ndgraph_scheduled_last", "Scheduled-set size of the most recent sample.",
		func(s EngineStats) string { return strconv.FormatInt(s.Scheduled, 10) })
	gauge("ndgraph_residual_last", "Convergence residual (active fraction) of the most recent sample.",
		func(s EngineStats) string { return strconv.FormatFloat(s.Residual, 'g', 6, 64) })

	if delays := o.DelaySnapshots(); len(delays) > 0 {
		writeHeader("ndgraph_delay_reads_total", "Reads observed by the engine's delay clock.", "counter")
		for _, d := range delays {
			fmt.Fprintf(w, "ndgraph_delay_reads_total{engine=%q} %d\n", d.Engine, d.Count)
		}
		writeHeader("ndgraph_delay_overflow_total", "Delay-clock reads that saturated the histogram range.", "counter")
		for _, d := range delays {
			fmt.Fprintf(w, "ndgraph_delay_overflow_total{engine=%q} %d\n", d.Engine, d.Overflow)
		}
		writeHeader("ndgraph_delay_epochs", "Read staleness in epochs, by quantile (the live empirical delay bound).", "gauge")
		for _, d := range delays {
			fmt.Fprintf(w, "ndgraph_delay_epochs{engine=%q,quantile=\"0.5\"} %d\n", d.Engine, d.P50)
			fmt.Fprintf(w, "ndgraph_delay_epochs{engine=%q,quantile=\"0.9\"} %d\n", d.Engine, d.P90)
			fmt.Fprintf(w, "ndgraph_delay_epochs{engine=%q,quantile=\"0.99\"} %d\n", d.Engine, d.P99)
			fmt.Fprintf(w, "ndgraph_delay_epochs{engine=%q,quantile=\"1\"} %d\n", d.Engine, d.Max)
		}
	}

	if fn := o.workerStatsFn(); fn != nil {
		workers := fn()
		renderWorker := func(name, help, typ string, get func(WorkerStats) int64) {
			writeHeader(name, help, typ)
			for _, ws := range workers {
				fmt.Fprintf(w, "%s{worker=%q} %d\n", name, ws.Worker, get(ws))
			}
		}
		renderWorker("ndgraph_worker_heartbeats_total", "Heartbeats received from the worker by the supervisor.", "counter",
			func(ws WorkerStats) int64 { return ws.Heartbeats })
		renderWorker("ndgraph_worker_retransmits_total", "Data batches re-sent by the worker after ack timeout.", "counter",
			func(ws WorkerStats) int64 { return ws.Retransmits })
		renderWorker("ndgraph_worker_recoveries_total", "Supervised restarts (checkpoint restore + boundary repair) of the worker.", "counter",
			func(ws WorkerStats) int64 { return ws.Recoveries })
		renderWorker("ndgraph_worker_messages_total", "Data messages delivered by the worker.", "counter",
			func(ws WorkerStats) int64 { return ws.Messages })
		renderWorker("ndgraph_worker_adopted_total", "Deliveries that improved a vertex value at the worker.", "counter",
			func(ws WorkerStats) int64 { return ws.Adopted })
		renderWorker("ndgraph_worker_unacked", "In-flight unacknowledged batches at the worker.", "gauge",
			func(ws WorkerStats) int64 { return ws.Unacked })
	}
}

// SetTraceSource installs the /trace endpoint's payload producer: a
// function that writes the current execution-path trace (conventionally
// the NDTR binary format) to w. Passing nil uninstalls it (the endpoint
// then serves 404). Safe on nil (no-op).
func (o *Observer) SetTraceSource(fn func(w io.Writer) error) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.traceSource = fn
	o.mu.Unlock()
}

func (o *Observer) traceSourceFn() func(io.Writer) error {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.traceSource
}

// buildInfo renders the binary's build identity from
// runtime/debug.ReadBuildInfo as JSON: Go version, module path/version,
// and the VCS revision stamped by the toolchain when available.
func buildInfo() map[string]string {
	out := map[string]string{"available": "false"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out["available"] = "true"
	out["go_version"] = bi.GoVersion
	out["path"] = bi.Path
	out["module"] = bi.Main.Path
	out["module_version"] = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision", "vcs.time", "vcs.modified":
			out[s.Key] = s.Value
		}
	}
	return out
}

// registerHealth wires the endpoints that must answer whether or not
// telemetry is enabled: /healthz (pure liveness: 200 as long as the
// process serves HTTP), /readyz (application readiness: 200 only when
// every installed ReadyCheck passes), and /buildinfo (binary identity).
//
// The liveness/readiness split matters for supervision: a restarting
// netdist worker is alive (do not kill it again) but not ready (do not
// route messages or queries to it). /healthz therefore never consults
// application state, and /readyz fails closed — no readiness source
// installed means 503.
func registerHealth(mux *http.ServeMux, o *Observer) {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		type verdict struct {
			Ready  bool         `json:"ready"`
			Checks []ReadyCheck `json:"checks,omitempty"`
			Reason string       `json:"reason,omitempty"`
		}
		w.Header().Set("Content-Type", "application/json")
		render := func(status int, v verdict) {
			w.WriteHeader(status)
			enc := json.NewEncoder(w)
			enc.SetIndent("", " ")
			_ = enc.Encode(v)
		}
		fn := o.readinessFn()
		if fn == nil {
			render(http.StatusServiceUnavailable, verdict{Ready: false, Reason: "no readiness source installed"})
			return
		}
		checks := fn()
		for _, c := range checks {
			if !c.OK {
				render(http.StatusServiceUnavailable, verdict{Ready: false, Checks: checks})
				return
			}
		}
		render(http.StatusOK, verdict{Ready: true, Checks: checks})
	})
	mux.HandleFunc("/buildinfo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(buildInfo())
	})
}

// Handler returns the observability endpoint: /metrics (Prometheus text),
// /statusz (the live progress plane: phase, residual curve, staleness
// quantiles, steal/idle rates, worker aggregates — JSON, or HTML with
// ?format=html), /events (the ring buffer as JSON), /healthz (liveness), /readyz
// (readiness, driven by SetReadiness), /buildinfo, /trace (the current
// execution-path trace, when a source is installed), /debug/vars (expvar),
// and /debug/pprof (the standard profiling suite). Workers of labeled
// pools carry pprof goroutine labels, so /debug/pprof/profile attributes
// CPU time to engines. Safe on nil (a handler that serves 503 for
// everything except /healthz, /readyz, and /buildinfo; /readyz then
// always reports not ready).
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	registerHealth(mux, o)
	if o == nil {
		mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "observability disabled", http.StatusServiceUnavailable)
		})
		return mux
	}
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		fn := o.traceSourceFn()
		if fn == nil {
			http.Error(w, "no trace source installed", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", `attachment; filename="run.ndt"`)
		if err := fn(w); err != nil {
			// Headers are already out; the best we can do is cut the
			// connection so the client sees a short read, not a valid file.
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
				}
			}
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Prometheus text exposition format, version pinned per the
		// exposition spec so scrapers negotiate correctly.
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.WriteMetrics(w)
	})
	mux.HandleFunc("/statusz", o.serveStatusz)
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		type jsonEvent struct {
			Engine string `json:"engine"`
			Event
		}
		evs := o.Events()
		out := make([]jsonEvent, len(evs))
		for i, ev := range evs {
			out[i] = jsonEvent{Engine: ev.Engine.String(), Event: ev}
		}
		_ = enc.Encode(out)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts the observability endpoint on addr (e.g. ":6060", or ":0"
// to pick a free port) in a background goroutine and returns immediately.
func Serve(addr string, o *Observer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: o.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}
