package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// WriteMetrics renders the accumulated per-engine counters in the
// Prometheus text exposition format. Every engine kind is rendered even at
// zero, so one scrape always shows the full executor inventory.
func (o *Observer) WriteMetrics(w io.Writer) {
	if o == nil {
		return
	}
	stats := o.Stats()
	writeHeader := func(name, help, typ string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	counter := func(name, help string, get func(EngineStats) int64) {
		writeHeader(name, help, "counter")
		for _, s := range stats {
			fmt.Fprintf(w, "%s{engine=%q} %d\n", name, s.Engine, get(s))
		}
	}
	gauge := func(name, help string, get func(EngineStats) string) {
		writeHeader(name, help, "gauge")
		for _, s := range stats {
			fmt.Fprintf(w, "%s{engine=%q} %s\n", name, s.Engine, get(s))
		}
	}
	counter("ndgraph_samples_total", "Telemetry events emitted.",
		func(s EngineStats) int64 { return s.Samples })
	counter("ndgraph_iterations_total", "Iterations (or sample windows) completed.",
		func(s EngineStats) int64 { return s.Iterations })
	counter("ndgraph_updates_total", "Vertex update functions executed.",
		func(s EngineStats) int64 { return s.Updates })
	counter("ndgraph_edge_reads_total", "Edge-data words read.",
		func(s EngineStats) int64 { return s.EdgeReads })
	counter("ndgraph_edge_writes_total", "Edge-data words written.",
		func(s EngineStats) int64 { return s.EdgeWrites })
	counter("ndgraph_rw_conflicts_total", "Census-classified read-write conflict edges.",
		func(s EngineStats) int64 { return s.RWConflicts })
	counter("ndgraph_ww_conflicts_total", "Census-classified write-write conflict edges.",
		func(s EngineStats) int64 { return s.WWConflicts })
	counter("ndgraph_barrier_wait_nanoseconds_total", "Summed per-worker barrier-wait (load imbalance).",
		func(s EngineStats) int64 { return s.BarrierWait })
	counter("ndgraph_busy_nanoseconds_total", "Wall time spent inside sampled iterations.",
		func(s EngineStats) int64 { return s.Duration })
	counter("ndgraph_messages_total", "Distributed messages delivered (including duplicates).",
		func(s EngineStats) int64 { return s.Messages })
	counter("ndgraph_duplicate_messages_total", "Distributed duplicate deliveries injected.",
		func(s EngineStats) int64 { return s.Duplicates })
	counter("ndgraph_dropped_messages_total", "Distributed deliveries lost and retransmitted.",
		func(s EngineStats) int64 { return s.Drops })
	gauge("ndgraph_scheduled_last", "Scheduled-set size of the most recent sample.",
		func(s EngineStats) string { return strconv.FormatInt(s.Scheduled, 10) })
	gauge("ndgraph_residual_last", "Convergence residual (active fraction) of the most recent sample.",
		func(s EngineStats) string { return strconv.FormatFloat(s.Residual, 'g', 6, 64) })
}

// Handler returns the observability endpoint: /metrics (Prometheus text),
// /events (the ring buffer as JSON), /debug/vars (expvar), and
// /debug/pprof (the standard profiling suite). Workers of labeled pools
// carry pprof goroutine labels, so /debug/pprof/profile attributes CPU
// time to engines. Safe on nil (a handler that serves 503).
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	if o == nil {
		mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "observability disabled", http.StatusServiceUnavailable)
		})
		return mux
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.WriteMetrics(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		type jsonEvent struct {
			Engine string `json:"engine"`
			Event
		}
		evs := o.Events()
		out := make([]jsonEvent, len(evs))
		for i, ev := range evs {
			out[i] = jsonEvent{Engine: ev.Engine.String(), Event: ev}
		}
		_ = enc.Encode(out)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts the observability endpoint on addr (e.g. ":6060", or ":0"
// to pick a free port) in a background goroutine and returns immediately.
func Serve(addr string, o *Observer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: o.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}
