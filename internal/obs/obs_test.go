package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestNilObserverIsSafeEverywhere(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Error("nil observer reports Enabled")
	}
	if o.SampleConflicts() {
		t.Error("nil observer reports SampleConflicts")
	}
	o.Emit(Event{Engine: EngineCore, Updates: 5})
	o.AttachSink(NewJSONLSink(io.Discard))
	o.PublishExpvar("nil-test")
	if evs := o.Events(); evs != nil {
		t.Errorf("nil observer Events = %v, want nil", evs)
	}
	if st := o.Stats(); st != nil {
		t.Errorf("nil observer Stats = %v, want nil", st)
	}
	if err := o.Close(); err != nil {
		t.Errorf("nil observer Close = %v", err)
	}
	var buf bytes.Buffer
	o.WriteMetrics(&buf)
	if buf.Len() != 0 {
		t.Errorf("nil observer wrote metrics: %q", buf.String())
	}
}

func TestEmitFoldsCounters(t *testing.T) {
	o := New(Options{})
	o.Emit(Event{Engine: EngineCore, Iter: 0, Scheduled: 10, Updates: 10, EdgeReads: 40, EdgeWrites: 7, RWConflicts: 2, WWConflicts: 1, Residual: 0.5, BarrierWaitNanos: 100, DurationNanos: 1000})
	o.Emit(Event{Engine: EngineCore, Iter: 1, Scheduled: 4, Updates: 4, EdgeReads: 16, EdgeWrites: 3, RWConflicts: -1, WWConflicts: -1, Residual: 0.2, BarrierWaitNanos: 50, DurationNanos: 800})
	o.Emit(Event{Engine: EngineDist, Iter: 0, Messages: 100, Duplicates: 5, Drops: 3})

	stats := o.Stats()
	if len(stats) != int(numEngines) {
		t.Fatalf("Stats returned %d engines, want %d", len(stats), numEngines)
	}
	core := stats[EngineCore]
	if core.Engine != "core" {
		t.Errorf("stats[EngineCore].Engine = %q", core.Engine)
	}
	if core.Samples != 2 || core.Iterations != 2 || core.Updates != 14 {
		t.Errorf("core samples/iters/updates = %d/%d/%d, want 2/2/14", core.Samples, core.Iterations, core.Updates)
	}
	if core.EdgeReads != 56 || core.EdgeWrites != 10 {
		t.Errorf("core reads/writes = %d/%d, want 56/10", core.EdgeReads, core.EdgeWrites)
	}
	// -1 marks "no census"; it must not be subtracted from the totals.
	if core.RWConflicts != 2 || core.WWConflicts != 1 {
		t.Errorf("core RW/WW = %d/%d, want 2/1", core.RWConflicts, core.WWConflicts)
	}
	if core.BarrierWait != 150 || core.Duration != 1800 {
		t.Errorf("core wait/duration = %d/%d, want 150/1800", core.BarrierWait, core.Duration)
	}
	if core.Scheduled != 4 || core.Residual != 0.2 {
		t.Errorf("core gauges = %d/%v, want 4/0.2 (last sample)", core.Scheduled, core.Residual)
	}
	dist := stats[EngineDist]
	if dist.Messages != 100 || dist.Duplicates != 5 || dist.Drops != 3 {
		t.Errorf("dist messages/dups/drops = %d/%d/%d", dist.Messages, dist.Duplicates, dist.Drops)
	}
	for _, k := range EngineKinds() {
		if stats[k].Engine != k.String() {
			t.Errorf("stats[%d].Engine = %q, want %q", k, stats[k].Engine, k)
		}
	}
}

func TestRingWraparoundKeepsOrder(t *testing.T) {
	o := New(Options{RingSize: 4})
	for i := int64(0); i < 10; i++ {
		o.Emit(Event{Engine: EngineAsync, Iter: i})
	}
	evs := o.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.Iter != want {
			t.Errorf("ring[%d].Iter = %d, want %d (oldest-first)", i, ev.Iter, want)
		}
	}
}

func TestEmitIsConcurrencySafe(t *testing.T) {
	o := New(Options{RingSize: 64})
	o.AttachSink(NewJSONLSink(io.Discard))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				o.Emit(Event{Engine: EngineKind(w % int(numEngines)), Iter: int64(i), Updates: 1})
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, s := range o.Stats() {
		total += s.Updates
	}
	if total != 8*500 {
		t.Errorf("total updates = %d, want %d", total, 8*500)
	}
}

func TestJSONLSinkEmitsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Consume(&Event{TimeUnixNano: 42, Engine: EngineCore, Iter: 3, Scheduled: 7, Updates: 7, EdgeReads: 21, EdgeWrites: 4, RWConflicts: 1, WWConflicts: 0, Residual: 0.35, BarrierWaitNanos: 9, DurationNanos: 99})
	s.Consume(&Event{TimeUnixNano: 43, Engine: EngineDist, Messages: 10, Duplicates: 1, Drops: 2})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v\n%s", err, lines[0])
	}
	if first["engine"] != "core" || first["iter"] != float64(3) || first["residual"] != 0.35 {
		t.Errorf("line 0 fields wrong: %v", first)
	}
	if _, ok := first["messages"]; ok {
		t.Error("non-dist event carries dist-only fields")
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 1 is not valid JSON: %v\n%s", err, lines[1])
	}
	if second["messages"] != float64(10) || second["duplicates"] != float64(1) || second["drops"] != float64(2) {
		t.Errorf("dist fields wrong: %v", second)
	}
}

func TestJSONLSinkClosesUnderlyingFile(t *testing.T) {
	cw := &closeRecorder{}
	s := NewJSONLSink(cw)
	s.Consume(&Event{Engine: EngineCore})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !cw.closed {
		t.Error("Close did not close the underlying writer")
	}
	if !strings.Contains(cw.buf.String(), `"engine":"core"`) {
		t.Errorf("flushed output missing event: %q", cw.buf.String())
	}
}

type closeRecorder struct {
	buf    bytes.Buffer
	closed bool
}

func (c *closeRecorder) Write(p []byte) (int, error) { return c.buf.Write(p) }
func (c *closeRecorder) Close() error                { c.closed = true; return nil }

func TestWriteMetricsRendersEveryEngine(t *testing.T) {
	o := New(Options{})
	o.Emit(Event{Engine: EnginePush, Iter: 0, Scheduled: 5, Updates: 5, EdgeReads: 12, EdgeWrites: 6})
	var buf bytes.Buffer
	o.WriteMetrics(&buf)
	text := buf.String()
	for _, k := range EngineKinds() {
		if !strings.Contains(text, fmt.Sprintf("ndgraph_samples_total{engine=%q}", k.String())) {
			t.Errorf("/metrics missing engine %q", k)
		}
	}
	for _, want := range []string{
		`ndgraph_updates_total{engine="push"} 5`,
		`ndgraph_edge_reads_total{engine="push"} 12`,
		`ndgraph_edge_writes_total{engine="push"} 6`,
		`ndgraph_scheduled_last{engine="push"} 5`,
		"# TYPE ndgraph_updates_total counter",
		"# TYPE ndgraph_residual_last gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\n%s", want, text)
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	o := New(Options{})
	o.Emit(Event{Engine: EngineShard, Iter: 2, Updates: 9})
	o.PublishExpvar("obs-http-test")
	srv, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, `ndgraph_updates_total{engine="shard"} 9`) {
		t.Errorf("/metrics = %d %q", code, body)
	}
	code, body := get("/events")
	if code != http.StatusOK {
		t.Fatalf("/events = %d", code)
	}
	var evs []map[string]any
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatalf("/events is not JSON: %v", err)
	}
	if len(evs) != 1 || evs[0]["engine"] != "shard" {
		t.Errorf("/events = %v", evs)
	}
	if code, body := get("/debug/vars"); code != http.StatusOK || !strings.Contains(body, "obs-http-test") {
		t.Errorf("/debug/vars = %d (published var missing)", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

func TestNilHandlerServes503(t *testing.T) {
	var o *Observer
	srv, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("nil observer /metrics = %d, want 503", resp.StatusCode)
	}
}

func TestPublishExpvarRebindsWithoutPanic(t *testing.T) {
	a := New(Options{})
	b := New(Options{})
	a.Emit(Event{Engine: EngineCore, Updates: 1})
	b.Emit(Event{Engine: EngineCore, Updates: 2})
	a.PublishExpvar("obs-rebind-test")
	b.PublishExpvar("obs-rebind-test") // expvar.Publish would panic here
}

func TestObserverCloseClosesSinksOnce(t *testing.T) {
	o := New(Options{})
	cw := &closeRecorder{}
	o.AttachSink(NewJSONLSink(cw))
	o.Emit(Event{Engine: EngineAutonomous, Updates: 3})
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	if !cw.closed {
		t.Error("observer Close did not close attached sink")
	}
	// Emit after Close still folds counters, with no sink to deliver to.
	o.Emit(Event{Engine: EngineAutonomous, Updates: 1})
	if got := o.Stats()[EngineAutonomous].Updates; got != 4 {
		t.Errorf("post-Close updates = %d, want 4", got)
	}
}

func BenchmarkEmitJSONL(b *testing.B) {
	o := New(Options{})
	o.AttachSink(NewJSONLSink(bufio.NewWriter(io.Discard)))
	ev := Event{TimeUnixNano: 1, Engine: EngineCore, Iter: 1, Scheduled: 100, Updates: 100, EdgeReads: 500, EdgeWrites: 50, Residual: 0.1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Emit(ev)
	}
}
