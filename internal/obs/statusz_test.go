package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestStatuszServesJSON(t *testing.T) {
	o := New(Options{})
	o.SetPhase("nosync: running")
	o.Emit(Event{Engine: EngineNoSync, Updates: 42, Residual: 0.25, DelayP99: 7})
	clock := NewDelayClock(1, 1)
	clock.Stamp(0)
	clock.Advance()
	clock.ObserveRead(0, 0)
	o.SetDelaySource(EngineNoSync, clock.Hist)
	defer o.Close()

	code, hdr, body := doGet(t, o.Handler(), "/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/statusz Content-Type = %q", ct)
	}
	var p struct {
		Phase   string          `json:"phase"`
		Engines []EngineStats   `json:"engines"`
		Windows []WindowStat    `json:"windows"`
		Delay   []DelaySnapshot `json:"delay"`
	}
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/statusz is not JSON: %v\n%s", err, body)
	}
	if p.Phase != "nosync: running" {
		t.Errorf("phase = %q", p.Phase)
	}
	// Only engines that emitted appear; the nosync sample must be there.
	if len(p.Engines) != 1 || p.Engines[0].Engine != "nosync" || p.Engines[0].Updates != 42 {
		t.Errorf("engines = %+v", p.Engines)
	}
	if len(p.Delay) != 1 || p.Delay[0].Engine != "nosync" || p.Delay[0].Count != 1 || p.Delay[0].Max != 1 {
		t.Errorf("delay = %+v", p.Delay)
	}
}

func TestStatuszServesHTML(t *testing.T) {
	o := New(Options{})
	o.SetPhase("core: iterating")
	o.Emit(Event{Engine: EngineCore, Updates: 9, Residual: 0.5})
	_ = o.Close() // flush the partial window so the residual curve renders

	for _, path := range []string{"/statusz?format=html"} {
		code, hdr, body := doGet(t, o.Handler(), path)
		if code != http.StatusOK {
			t.Fatalf("%s = %d", path, code)
		}
		if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
			t.Fatalf("%s Content-Type = %q", path, ct)
		}
		for _, want := range []string{"core: iterating", "<table>", "residual curve"} {
			if !strings.Contains(body, want) {
				t.Errorf("%s missing %q", path, want)
			}
		}
	}
}

// An Accept header preferring text/html (a browser) selects the HTML view
// without the query parameter.
func TestStatuszAcceptHeaderSelectsHTML(t *testing.T) {
	o := New(Options{})
	req := httptest.NewRequest(http.MethodGet, "/statusz", nil)
	req.Header.Set("Accept", "text/html,application/xhtml+xml")
	rr := httptest.NewRecorder()
	o.Handler().ServeHTTP(rr, req)
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("Accept: text/html got Content-Type %q", ct)
	}
}

func TestStatuszNilObserver(t *testing.T) {
	var o *Observer
	code, _, _ := doGet(t, o.Handler(), "/statusz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("nil observer /statusz = %d, want 503", code)
	}
}

// Satellite: pin the Prometheus text exposition Content-Type so scrapers
// relying on the version parameter never regress.
func TestMetricsContentTypePinned(t *testing.T) {
	o := New(Options{})
	code, hdr, _ := doGet(t, o.Handler(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	const want = "text/plain; version=0.0.4; charset=utf-8"
	if ct := hdr.Get("Content-Type"); ct != want {
		t.Fatalf("/metrics Content-Type = %q, want %q", ct, want)
	}
}

// /metrics renders the delay-clock series once a source is installed.
func TestMetricsIncludeDelaySeries(t *testing.T) {
	o := New(Options{})
	clock := NewDelayClock(1, 2)
	clock.Stamp(0)
	for i := 0; i < 3; i++ {
		clock.Advance()
	}
	clock.ObserveRead(0, 0) // staleness 3
	o.SetDelaySource(EngineNoSync, clock.Hist)
	var sb strings.Builder
	o.WriteMetrics(&sb)
	text := sb.String()
	for _, want := range []string{
		`ndgraph_delay_reads_total{engine="nosync"} 1`,
		`ndgraph_delay_overflow_total{engine="nosync"} 0`,
		fmt.Sprintf(`ndgraph_delay_epochs{engine="nosync",quantile="0.99"} %d`, 3),
		fmt.Sprintf(`ndgraph_delay_epochs{engine="nosync",quantile="1"} %d`, 3),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// Satellite: Emit, WriteMetrics, the HTTP handler, and window/delay
// snapshots must be safe to run concurrently (exercised under -race in CI).
func TestConcurrentEmitScrapeAndStatusz(t *testing.T) {
	o := New(Options{RingSize: 64})
	clock := NewDelayClock(2, 8)
	o.SetDelaySource(EngineNoSync, clock.Hist)
	h := o.Handler()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				slot := uint32(i % 8)
				clock.Advance()
				clock.Stamp(slot)
				clock.ObserveRead(w, slot)
				h := clock.Hist()
				o.Emit(Event{Engine: EngineNoSync, Iter: int64(i), Updates: 1,
					DelayP50: h.Quantile(0.5), DelayP99: h.Quantile(0.99), DelayMax: h.Max()})
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		o.WriteMetrics(&sb)
		if code, _, body := doGet(t, h, "/statusz"); code != http.StatusOK {
			t.Fatalf("/statusz under load = %d", code)
		} else if !json.Valid([]byte(body)) {
			t.Fatalf("/statusz under load is not JSON: %s", body)
		}
		if code, _, _ := doGet(t, h, "/metrics"); code != http.StatusOK {
			t.Fatalf("/metrics under load = %d", code)
		}
		_ = o.Windows()
		_ = o.DelaySnapshots()
	}
	close(stop)
	wg.Wait()
	if err := o.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
