package obs

import (
	"testing"
	"time"
)

// Events within one WindowEvery span fold into a single pending window;
// crossing the span rolls it into the closed ring.
func TestWindowFoldAndRoll(t *testing.T) {
	o := New(Options{WindowEvery: time.Millisecond})
	base := time.Now().UnixNano()
	o.Emit(Event{Engine: EngineNoSync, TimeUnixNano: base, Updates: 10, Steals: 1, Residual: 0.5})
	o.Emit(Event{Engine: EngineNoSync, TimeUnixNano: base + 100, Updates: 20, Steals: 2, Residual: 0.4})
	if got := o.Windows(); len(got) != 0 {
		t.Fatalf("window closed early: %+v", got)
	}
	// This event spans the window width: the fold rolls the window closed.
	o.Emit(Event{Engine: EngineNoSync, TimeUnixNano: base + int64(time.Millisecond), Updates: 5, Residual: 0.3})
	wins := o.Windows()
	if len(wins) != 1 {
		t.Fatalf("closed windows = %d, want 1", len(wins))
	}
	w := wins[0]
	if w.Engine != "nosync" || w.Samples != 3 || w.Updates != 35 || w.Steals != 3 {
		t.Errorf("window = %+v, want nosync/3 samples/35 updates/3 steals", w)
	}
	if w.Residual != 0.3 {
		t.Errorf("window Residual = %g, want the last sample's 0.3", w.Residual)
	}
	if w.StartUnixNano != base || w.EndUnixNano != base+int64(time.Millisecond) {
		t.Errorf("window span = [%d, %d], want [%d, %d]", w.StartUnixNano, w.EndUnixNano, base, base+int64(time.Millisecond))
	}
}

// Regression (PR 9 satellite): a run shorter than WindowEvery used to vanish
// from the aggregation entirely — the pending partial window was dropped at
// shutdown. Close must flush it.
func TestCloseFlushesPartialWindow(t *testing.T) {
	o := New(Options{}) // default 1s window, far longer than this test
	o.Emit(Event{Engine: EngineCore, TimeUnixNano: 1, Updates: 7, Residual: 0.9})
	o.Emit(Event{Engine: EngineNoSync, TimeUnixNano: 2, Updates: 3, Residual: 0.1})
	if got := o.Windows(); len(got) != 0 {
		t.Fatalf("windows closed before Close: %+v", got)
	}
	if err := o.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wins := o.Windows()
	if len(wins) != 2 {
		t.Fatalf("closed windows after Close = %d, want 2 (one per engine)", len(wins))
	}
	byEngine := map[string]WindowStat{}
	for _, w := range wins {
		byEngine[w.Engine] = w
	}
	if w := byEngine["core"]; w.Updates != 7 || w.Samples != 1 {
		t.Errorf("core partial window = %+v", w)
	}
	if w := byEngine["nosync"]; w.Updates != 3 || w.Residual != 0.1 {
		t.Errorf("nosync partial window = %+v", w)
	}
	// A second Close finds nothing pending and flushes nothing twice.
	_ = o.Close()
	if got := len(o.Windows()); got != 2 {
		t.Errorf("windows after double Close = %d, want 2", got)
	}
}

// The closed-window ring keeps the most recent windowKeep windows,
// oldest-first, once it wraps.
func TestWindowRingWraparoundKeepsOrder(t *testing.T) {
	// With a 1ns width, every second event crosses the span and rolls the
	// window, so window j holds samples 2j and 2j+1 (Updates = 4j+1).
	o := New(Options{WindowEvery: time.Nanosecond})
	const closed = windowKeep + 10
	for i := 0; i < 2*closed; i++ {
		o.Emit(Event{Engine: EngineAsync, TimeUnixNano: int64(i + 1), Iter: int64(i), Updates: int64(i)})
	}
	wins := o.Windows()
	if len(wins) != windowKeep {
		t.Fatalf("ring holds %d windows, want %d", len(wins), windowKeep)
	}
	for i, w := range wins {
		j := int64(closed - windowKeep + i)
		if want := 4*j + 1; w.Updates != want {
			t.Fatalf("window[%d].Updates = %d, want %d (oldest-first order broken)", i, w.Updates, want)
		}
	}
}

func TestWindowsNilSafe(t *testing.T) {
	var o *Observer
	if got := o.Windows(); got != nil {
		t.Errorf("nil Windows = %v", got)
	}
	o.SetPhase("x")
	if o.Phase() != "" {
		t.Error("nil Phase != empty")
	}
	o.SetDelaySource(EngineCore, func() DelayHist { return DelayHist{} })
	if got := o.DelaySnapshots(); got != nil {
		t.Errorf("nil DelaySnapshots = %v", got)
	}
}
