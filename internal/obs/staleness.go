// Delay clocks: live measurement of read staleness under nondeterministic
// execution.
//
// The paper proves *eligibility* — a racy schedule still converges — but
// says nothing about how racy a given run actually was. Blanco et al.
// ("Delayed Asynchronous Iterative Graph Algorithms") sharpen the question:
// asynchronous iterative methods converge when the *delay* between a
// value's write and its read is bounded, so the empirical delay bound is
// the quantity that turns tolerance into a guarantee. A DelayClock
// measures exactly that, online, while the run is in flight:
//
//   - a global epoch counter advanced by the executor (once per iteration
//     for barrier engines, once per executed update for the barrier-free
//     tiers);
//   - a per-slot stamp array recording the epoch of each edge word's most
//     recent publish (Stamp, called at commit time);
//   - per-worker shards of an HDR-style log-bucketed histogram fed by every
//     read (ObserveRead: staleness = current epoch − write stamp).
//
// Everything on the hot path is O(1) and allocation-free: Stamp is one
// atomic load plus one atomic store, ObserveRead is two atomic loads plus
// one atomic increment into the calling worker's own cache-padded shard.
// Merging shards into a DelayHist happens only on the observation plane
// (telemetry samples, /statusz, /metrics scrapes).
package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram geometry: exact buckets for small delays (where barrier engines
// live), then log-spaced octaves with linear sub-buckets (HDR style) for the
// long tail a work-stealing run produces, and one saturating overflow bucket.
const (
	delayExact   = 16 // exact counts for staleness 0..15 epochs
	delaySub     = 4  // linear sub-buckets per power-of-two octave
	delayOctaves = 20 // octaves above the exact range: covers < 2^24 epochs
	// delayBuckets is the total bucket count, overflow included.
	delayBuckets = delayExact + delayOctaves*delaySub + 1
	// delayOverflowLow is the smallest staleness that lands in the overflow
	// bucket.
	delayOverflowLow = int64(1) << (delayOctaves + 4)
)

// delayBucket maps a staleness (in epochs) to its bucket index.
func delayBucket(d int64) int {
	if d < delayExact {
		return int(d)
	}
	l := bits.Len64(uint64(d)) // >= 5 since d >= 16
	oct := l - 5
	if oct >= delayOctaves {
		return delayBuckets - 1 // saturate: the overflow bucket
	}
	sub := int((uint64(d) >> (l - 3)) & (delaySub - 1))
	return delayExact + oct*delaySub + sub
}

// delayBucketLow returns the smallest staleness the bucket covers, the value
// quantile queries report.
func delayBucketLow(i int) int64 {
	if i < delayExact {
		return int64(i)
	}
	if i >= delayBuckets-1 {
		return delayOverflowLow
	}
	i -= delayExact
	oct, sub := i/delaySub, i%delaySub
	base := int64(1) << (oct + 4)
	return base + int64(sub)*(base/delaySub)
}

// delayShard is one worker's private histogram. The buckets are atomics so
// observation-plane readers (telemetry samples, /statusz) can merge shards
// while workers keep counting; the trailing pad keeps neighbouring shards
// off each other's cache lines.
type delayShard struct {
	buckets [delayBuckets]atomic.Int64
	_       [64]byte
}

// DelayClock measures read staleness in epochs: the number of epoch
// advances between a value's publish (Stamp) and a read of it
// (ObserveRead). One clock serves one executor run; the executor defines
// the epoch (iterations for barrier engines, executed updates for
// barrier-free ones). All methods are safe on a nil receiver (no-ops /
// zero values), so engines guard their stamping with a single pointer test.
type DelayClock struct {
	epoch  atomic.Int64
	stamps []atomic.Int64
	shards []delayShard
}

// NewDelayClock builds a clock for `workers` workers over `slots` value
// slots (conventionally the graph's edge-word count). This is the only
// allocating call; the per-read and per-write paths are allocation-free.
func NewDelayClock(workers, slots int) *DelayClock {
	if workers < 1 {
		workers = 1
	}
	if slots < 0 {
		slots = 0
	}
	return &DelayClock{
		stamps: make([]atomic.Int64, slots),
		shards: make([]delayShard, workers),
	}
}

// Advance moves the clock one epoch forward and returns the new epoch.
// Barrier engines call it once per iteration (staleness is then measured in
// iterations); barrier-free executors call it once per executed update.
func (c *DelayClock) Advance() int64 {
	if c == nil {
		return 0
	}
	return c.epoch.Add(1)
}

// Epoch returns the current epoch.
func (c *DelayClock) Epoch() int64 {
	if c == nil {
		return 0
	}
	return c.epoch.Load()
}

// Stamp records that slot was published at the current epoch. Called at
// commit time by the writing worker; one atomic load + one atomic store.
func (c *DelayClock) Stamp(slot uint32) {
	if c == nil || int(slot) >= len(c.stamps) {
		return
	}
	c.stamps[slot].Store(c.epoch.Load())
}

// ObserveRead records a read of slot by worker: the staleness (current
// epoch − publish stamp, clamped at 0) is bucketed into the worker's own
// histogram shard. Two atomic loads + one atomic add, no allocation.
func (c *DelayClock) ObserveRead(worker int, slot uint32) {
	if c == nil || int(slot) >= len(c.stamps) {
		return
	}
	d := c.epoch.Load() - c.stamps[slot].Load()
	if d < 0 {
		// A concurrent Advance between the two loads; the read is fresh.
		d = 0
	}
	if worker < 0 || worker >= len(c.shards) {
		worker = 0
	}
	c.shards[worker].buckets[delayBucket(d)].Add(1)
}

// Reset zeroes the epoch, every stamp, and every shard, so one clock can
// serve repeated runs of the same executor.
func (c *DelayClock) Reset() {
	if c == nil {
		return
	}
	c.epoch.Store(0)
	for i := range c.stamps {
		c.stamps[i].Store(0)
	}
	for s := range c.shards {
		for b := range c.shards[s].buckets {
			c.shards[s].buckets[b].Store(0)
		}
	}
}

// Hist merges the per-worker shards into one point-in-time histogram.
// Returned by value (fixed-size buckets), so taking a snapshot allocates
// nothing; safe to call concurrently with stamping. Nil-safe (zero hist).
func (c *DelayClock) Hist() DelayHist {
	var h DelayHist
	if c == nil {
		return h
	}
	for s := range c.shards {
		for b := range c.shards[s].buckets {
			n := c.shards[s].buckets[b].Load()
			h.counts[b] += n
			h.total += n
		}
	}
	return h
}

// DelayHist is a merged staleness histogram snapshot.
type DelayHist struct {
	counts [delayBuckets]int64
	total  int64
}

// Count returns the number of observed reads.
func (h DelayHist) Count() int64 { return h.total }

// Overflow returns the reads whose staleness saturated the histogram range
// (≥ 2^24 epochs).
func (h DelayHist) Overflow() int64 { return h.counts[delayBuckets-1] }

// Quantile returns the staleness at quantile q ∈ [0,1] (the lower bound of
// the bucket containing that rank; exact below 16 epochs). Zero when the
// histogram is empty.
func (h DelayHist) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var cum int64
	for b := 0; b < delayBuckets; b++ {
		cum += h.counts[b]
		if cum > rank {
			return delayBucketLow(b)
		}
	}
	return delayBucketLow(delayBuckets - 1)
}

// Max returns the lower bound of the highest occupied bucket — the measured
// empirical delay bound, at bucket resolution. Zero when empty.
func (h DelayHist) Max() int64 {
	for b := delayBuckets - 1; b >= 0; b-- {
		if h.counts[b] != 0 {
			return delayBucketLow(b)
		}
	}
	return 0
}
