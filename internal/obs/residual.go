// Online residual estimation: a striped, allocation-free accumulator of
// convergence progress, updated at vertex-commit time.
//
// The engines' per-sample Residual gauge is the *active fraction*
// (scheduled / |V|) — a proxy that says how much work is queued, not how
// much the values still move. The estimator measures the movement itself:
// every committed vertex transition contributes |new − old| under the
// algorithm's own metric (a numeric delta for fixed-point kernels like
// PageRank, a changed-vertex count for discrete labels), so a windowed
// difference of two Totals snapshots is the residual term the ε-aware
// stopping rule (and Eedi et al.'s non-blocking PageRank) terminates on.
package obs

import (
	"math"
	"sync/atomic"
)

// residualStripe is one worker's private accumulator, padded to a cache
// line so concurrent committers never false-share.
type residualStripe struct {
	sumBits atomic.Uint64 // float64 bits of the residual sum (CAS-added)
	changed atomic.Int64  // commits with new != old
	updates atomic.Int64  // commits observed
	_       [40]byte
}

// addFloat accumulates d into the stripe's float sum with a CAS loop. The
// stripe is worker-private, so the CAS succeeds first try outside of
// observation-plane races; the loop only exists to keep readers lock-free.
func (s *residualStripe) addFloat(d float64) {
	for {
		o := s.sumBits.Load()
		n := math.Float64bits(math.Float64frombits(o) + d)
		if s.sumBits.CompareAndSwap(o, n) {
			return
		}
	}
}

// ResidualEstimator accumulates per-commit residual contributions across
// per-worker stripes. All methods are safe on a nil receiver, so engines
// guard observation with one pointer test; Observe performs no heap
// allocation and touches only the calling worker's stripe.
type ResidualEstimator struct {
	// delta maps a committed transition to its residual contribution. Nil
	// selects the discrete default: 1 when the value changed, else 0.
	delta   func(old, new uint64) float64
	stripes []residualStripe
}

// NewResidualEstimator builds an estimator for `workers` workers. delta is
// the algorithm's residual metric (e.g. |Δrank| for PageRank); nil counts
// changed vertices.
func NewResidualEstimator(workers int, delta func(old, new uint64) float64) *ResidualEstimator {
	if workers < 1 {
		workers = 1
	}
	return &ResidualEstimator{delta: delta, stripes: make([]residualStripe, workers)}
}

// Observe records one committed vertex transition by worker.
func (r *ResidualEstimator) Observe(worker int, old, new uint64) {
	if r == nil {
		return
	}
	if worker < 0 || worker >= len(r.stripes) {
		worker = 0
	}
	s := &r.stripes[worker]
	s.updates.Add(1)
	if old != new {
		s.changed.Add(1)
	}
	var d float64
	if r.delta != nil {
		d = r.delta(old, new)
	} else if old != new {
		d = 1
	}
	if d != 0 {
		s.addFloat(d)
	}
}

// ResidualTotals is a point-in-time snapshot of the accumulated residual.
// Windowed residuals are differences of two snapshots.
type ResidualTotals struct {
	// Sum is the accumulated residual metric (Σ delta over all commits).
	Sum float64
	// Changed counts commits whose value differed from the previous one.
	Changed int64
	// Updates counts all observed commits.
	Updates int64
}

// Totals merges the stripes. Safe concurrently with Observe; nil-safe
// (zero totals).
func (r *ResidualEstimator) Totals() ResidualTotals {
	var t ResidualTotals
	if r == nil {
		return t
	}
	for i := range r.stripes {
		s := &r.stripes[i]
		t.Sum += math.Float64frombits(s.sumBits.Load())
		t.Changed += s.changed.Load()
		t.Updates += s.updates.Load()
	}
	return t
}

// Reset zeroes every stripe so one estimator can serve repeated runs.
func (r *ResidualEstimator) Reset() {
	if r == nil {
		return
	}
	for i := range r.stripes {
		s := &r.stripes[i]
		s.sumBits.Store(0)
		s.changed.Store(0)
		s.updates.Store(0)
	}
}
