package loader

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# comment
% also comment

0 1
1	2
2 0 extra-ignored
`
	g, err := ReadEdgeList(strings.NewReader(in), graph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if _, ok := g.FindEdge(1, 2); !ok {
		t.Fatal("missing edge 1→2")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for name, in := range map[string]string{
		"one field": "7\n",
		"non-int":   "a b\n",
		"negative":  "-1 2\n",
		"too large": "99999999999 1\n",
	} {
		if _, err := ReadEdgeList(strings.NewReader(in), graph.Options{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g, err := gen.RMAT(200, 1000, gen.DefaultRMAT, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, graph.Options{NumVertices: g.N()})
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestBinaryRoundTrip(t *testing.T) {
	g, err := gen.RMAT(300, 2000, gen.DefaultRMAT, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty binary accepted")
	}
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})); err == nil {
		t.Error("bad magic accepted")
	}
	// Valid header claiming more edges than present.
	var buf bytes.Buffer
	g, _ := gen.Ring(4)
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadBinary(bytes.NewReader(truncated)); err == nil {
		t.Error("truncated binary accepted")
	}
}

func TestReadMatrixMarketGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% produced by hand
3 3 3
1 2 0.5
2 3 1.5
3 1 2.5
`
	g, err := ReadMatrixMarket(strings.NewReader(in), graph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if _, ok := g.FindEdge(0, 1); !ok {
		t.Fatal("missing 1-based-converted edge 0→1")
	}
}

func TestReadMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
3 3 2
2 1
3 3
`
	g, err := ReadMatrixMarket(strings.NewReader(in), graph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// (2,1) expands to both directions; (3,3) is diagonal, kept single.
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3", g.M())
	}
	if _, ok := g.FindEdge(0, 1); !ok {
		t.Fatal("symmetric expansion missing 0→1")
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	for name, in := range map[string]string{
		"empty":      "",
		"bad header": "%%MatrixMarket matrix array real general\n2 2\n",
		"bad size":   "%%MatrixMarket matrix coordinate real general\nx y z\n",
		"bad entry":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1\n",
		"one field":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n",
	} {
		if _, err := ReadMatrixMarket(strings.NewReader(in), graph.Options{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadSaveFile(t *testing.T) {
	dir := t.TempDir()
	g, err := gen.RMAT(100, 500, gen.DefaultRMAT, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"g.txt", "g.bin"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, g); err != nil {
			t.Fatalf("SaveFile(%s): %v", name, err)
		}
		g2, err := LoadFile(path, graph.Options{NumVertices: g.N()})
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", name, err)
		}
		assertSameGraph(t, g, g2)
	}
	if err := SaveFile(filepath.Join(dir, "g.mtx"), g); err == nil {
		t.Error("SaveFile(.mtx) accepted")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.txt"), graph.Options{}); err == nil {
		t.Error("LoadFile of missing path accepted")
	}
}

func TestLoadFileMatrixMarket(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.mtx")
	content := "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadFile(path, graph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("M = %d", g.M())
	}
}

func assertSameGraph(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("graph sizes differ: (%d,%d) vs (%d,%d)", a.N(), a.M(), b.N(), b.M())
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ae[i], be[i])
		}
	}
}

func TestLoadFileGzip(t *testing.T) {
	dir := t.TempDir()
	g, err := gen.RMAT(80, 400, gen.DefaultRMAT, 7)
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if err := WriteEdgeList(&raw, g); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "g.txt.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if _, err := zw.Write(raw.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadFile(path, graph.Options{NumVertices: g.N()})
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
	// Corrupt gzip must error.
	bad := filepath.Join(dir, "bad.txt.gz")
	if err := os.WriteFile(bad, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad, graph.Options{}); err == nil {
		t.Fatal("corrupt gzip accepted")
	}
}
