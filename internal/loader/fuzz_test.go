package loader

import (
	"bytes"
	"testing"

	"ndgraph/internal/graph"
)

// Native fuzz targets for every parser that consumes external bytes. The
// contract under test: arbitrary input must produce either a graph or an
// error — never a panic, and never an allocation proportional to a forged
// header field rather than to the input itself. Seed corpora live in
// testdata/fuzz/<Target>/; ci.sh gives each target a short -fuzz smoke on
// top of the checked-in seeds.

// lowerMaxVertices shrinks the loader's vertex-ID ceiling for the duration
// of a fuzz run, so hostile-but-admissible IDs stay cheap to reject or
// build instead of legitimately allocating hundreds of megabytes of CSR.
func lowerMaxVertices(f *testing.F) {
	old := MaxVertices
	MaxVertices = 1 << 16
	f.Cleanup(func() { MaxVertices = old })
}

func FuzzLoadEdgeList(f *testing.F) {
	lowerMaxVertices(f)
	f.Add([]byte("# three-cycle\n0 1\n1 2\n2 0\n"))
	f.Add([]byte("0\t1\n\n% also a comment\n1 0 ignored-extra-field\n"))
	f.Add([]byte("0 4294967295\n")) // over MaxVertices: must error, not allocate
	f.Add([]byte("a b\n"))
	f.Add([]byte("7\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data), graph.Options{})
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		// Round-trip: anything accepted must serialize and reload to the
		// same shape.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write-back: %v", err)
		}
		g2, err := ReadEdgeList(&buf, graph.Options{NumVertices: g.N()})
		if err != nil {
			t.Fatalf("reload of own output: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round-trip changed shape: %d/%d → %d/%d", g.N(), g.M(), g2.N(), g2.M())
		}
	})
}

func FuzzLoadMatrixMarket(f *testing.F) {
	lowerMaxVertices(f)
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n% cage-style\n3 3 2\n1 2 1.5\n2 3 -0.5\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern symmetric\n4 4 3\n2 1\n3 1\n4 2\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern general\n2 2 -1\n"))     // negative nnz
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n9 9\n")) // entry outside dims
	f.Add([]byte("%%MatrixMarket matrix array real general\n2 2\n"))                // unsupported layout
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern general\n1000000000 2 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadMatrixMarket(bytes.NewReader(data), graph.Options{})
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		if g.N() > 2*MaxVertices {
			t.Fatalf("accepted graph has %d vertices despite MaxVertices %d", g.N(), MaxVertices)
		}
	})
}

// FuzzReadBinary covers the checksummed binary format: a valid file must
// round-trip, and any corruption — header, body, or CRC trailer — must be
// rejected with an error proportional in cost to the input length.
func FuzzReadBinary(f *testing.F) {
	lowerMaxVertices(f)
	// A well-formed v2 file as the structural seed, plus its corruptions.
	g, err := graph.Build([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}}, graph.Options{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0xff // corrupt the CRC trailer
	f.Add(flipped)
	f.Add(valid[:len(valid)-6]) // truncated mid-trailer
	f.Add([]byte("NDGRnot-a-binary-graph"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rt, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := rt.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, rt); err != nil {
			t.Fatalf("write-back: %v", err)
		}
		rt2, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("reload of own output: %v", err)
		}
		if rt2.N() != rt.N() || rt2.M() != rt.M() {
			t.Fatalf("round-trip changed shape: %d/%d → %d/%d", rt.N(), rt.M(), rt2.N(), rt2.M())
		}
	})
}

// TestReadBinaryCorruptCRCErrors pins the corrupted-checksum contract the
// fuzz target relies on: every single-byte corruption of a valid file's
// trailer must be detected.
func TestReadBinaryCorruptCRCErrors(t *testing.T) {
	g, err := graph.Build([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}, graph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(valid)); err != nil {
		t.Fatalf("pristine file: %v", err)
	}
	for i := range valid {
		corrupt := append([]byte(nil), valid...)
		corrupt[i] ^= 0x01
		if _, err := ReadBinary(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("flipping byte %d of %d went undetected", i, len(valid))
		}
	}
}

// TestReadBinaryForgedCountsDoNotPreallocate documents the OOM hardening:
// a header claiming 2^32-1 edges (or vertices beyond MaxVertices) must
// fail from the bytes actually present, not allocate first.
func TestReadBinaryForgedCountsDoNotPreallocate(t *testing.T) {
	le := func(xs ...uint32) []byte {
		out := make([]byte, 0, 4*len(xs))
		for _, x := range xs {
			out = append(out, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
		}
		return out
	}
	// magic, version 1 (no CRC needed), n=2, m=0xFFFFFFFF, then nothing.
	forgedM := le(0x4e444752, 1, 2, 0xFFFFFFFF)
	if _, err := ReadBinary(bytes.NewReader(forgedM)); err == nil {
		t.Fatal("forged edge count loaded successfully")
	}
	forgedN := le(0x4e444752, 1, 0xFFFFFFFF, 0)
	if _, err := ReadBinary(bytes.NewReader(forgedN)); err == nil {
		t.Fatal("forged vertex count loaded successfully")
	}
}
