// Package loader reads and writes graphs in the interchange formats the
// paper's datasets ship in: SNAP-style whitespace edge lists (web-BerkStan,
// web-Google, soc-LiveJournal1), Matrix Market coordinate format (cage15,
// from the UF Sparse Matrix Collection), plus a compact binary format for
// fast round-tripping of generated graphs.
package loader

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"strings"

	"ndgraph/internal/fsafe"
	"ndgraph/internal/graph"
)

// MaxVertices caps the vertex-set size any loader will construct. A single
// hostile line ("0 4294967295") or a lying binary header would otherwise
// make graph.Build allocate tens of gigabytes of CSR offsets before any
// real data is validated. The default admits every dataset in the paper
// (soc-LiveJournal1, the largest, has ~4.8M vertices) with ample headroom;
// tests and fuzz targets lower it to keep adversarial inputs cheap.
var MaxVertices = 1 << 27

// maxEdgePrealloc bounds how many edge records a loader reserves on the
// strength of an unverified header count alone. Real edges past the
// reservation just grow the slice as the bytes actually arrive, so honest
// files pay at most a few reallocations while a forged count of 2^32-1
// edges allocates nothing it cannot back with input.
const maxEdgePrealloc = 1 << 20

// ReadEdgeList parses a SNAP-style edge list: one "src dst" pair per line,
// '#' or '%' lines are comments, blank lines ignored. Vertex IDs must be
// non-negative integers below MaxVertices; the vertex count is 1 + the
// maximum ID seen.
func ReadEdgeList(r io.Reader, opt graph.Options) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var edges []graph.Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("loader: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		src, err := parseVertex(fields[0])
		if err != nil {
			return nil, fmt.Errorf("loader: line %d: %v", lineNo, err)
		}
		dst, err := parseVertex(fields[1])
		if err != nil {
			return nil, fmt.Errorf("loader: line %d: %v", lineNo, err)
		}
		edges = append(edges, graph.Edge{Src: src, Dst: dst})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("loader: %v", err)
	}
	return graph.Build(edges, opt)
}

func parseVertex(s string) (uint32, error) {
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad vertex id %q: %v", s, err)
	}
	if v >= uint64(MaxVertices) {
		return 0, fmt.Errorf("vertex id %d exceeds MaxVertices (%d)", v, MaxVertices)
	}
	return uint32(v), nil
}

// WriteEdgeList writes g as a SNAP-style edge list with a header comment.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# ndgraph edge list: %d vertices, %d edges\n", g.N(), g.M()); err != nil {
		return err
	}
	for v := uint32(0); int(v) < g.N(); v++ {
		for _, d := range g.OutNeighbors(v) {
			if _, err := fmt.Fprintf(bw, "%d\t%d\n", v, d); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a Matrix Market coordinate-format file
// (%%MatrixMarket matrix coordinate ... header) into a directed graph:
// entry (i, j) becomes edge (i-1 → j-1); values, if present, are ignored.
// Symmetric matrices are expanded to both directions.
func ReadMatrixMarket(r io.Reader, opt graph.Options) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() {
		return nil, fmt.Errorf("loader: empty MatrixMarket input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("loader: unsupported MatrixMarket header %q", sc.Text())
	}
	symmetric := len(header) >= 5 && (header[4] == "symmetric" || header[4] == "skew-symmetric")

	// Skip comments, read the size line.
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("loader: bad MatrixMarket size line %q: %v", line, err)
		}
		break
	}
	if rows <= 0 || cols <= 0 || nnz < 0 {
		return nil, fmt.Errorf("loader: MatrixMarket size %dx%d nnz %d invalid", rows, cols, nnz)
	}
	if rows > MaxVertices || cols > MaxVertices {
		return nil, fmt.Errorf("loader: MatrixMarket size %dx%d exceeds MaxVertices (%d)", rows, cols, MaxVertices)
	}
	n := rows
	if cols > n {
		n = cols
	}
	if opt.NumVertices == 0 {
		opt.NumVertices = n
	}
	// Trust the declared nnz only up to maxEdgePrealloc; a forged count
	// must not reserve memory the entries below cannot justify.
	prealloc := nnz
	if prealloc > maxEdgePrealloc {
		prealloc = maxEdgePrealloc
	}
	edges := make([]graph.Edge, 0, prealloc)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("loader: bad MatrixMarket entry %q", line)
		}
		i, err1 := strconv.Atoi(fields[0])
		j, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || i < 1 || j < 1 {
			return nil, fmt.Errorf("loader: bad MatrixMarket entry %q", line)
		}
		// Entries outside the declared dimensions would truncate through
		// uint32 below and could land on a silently wrong edge.
		if i > rows || j > cols {
			return nil, fmt.Errorf("loader: MatrixMarket entry (%d, %d) outside declared %dx%d", i, j, rows, cols)
		}
		edges = append(edges, graph.Edge{Src: uint32(i - 1), Dst: uint32(j - 1)})
		if symmetric && i != j {
			edges = append(edges, graph.Edge{Src: uint32(j - 1), Dst: uint32(i - 1)})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("loader: %v", err)
	}
	return graph.Build(edges, opt)
}

// Binary format: magic, version, n, m, then m (src, dst) uint32 pairs,
// little-endian, followed (since version 2) by a CRC32 (IEEE) trailer over
// everything before it. Stable across platforms. The checksum turns a
// truncated or torn file into a load-time error instead of a silently
// wrong graph.
const (
	binMagic   = 0x4e444752 // "NDGR"
	binVersion = 2
)

// WriteBinary writes g in ndgraph binary format (version 2, checksummed).
func WriteBinary(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	h := crc32.NewIEEE()
	mw := io.MultiWriter(bw, h)
	hdr := []uint32{binMagic, binVersion, uint32(g.N()), uint32(g.M())}
	for _, x := range hdr {
		if err := binary.Write(mw, binary.LittleEndian, x); err != nil {
			return err
		}
	}
	for v := uint32(0); int(v) < g.N(); v++ {
		for _, d := range g.OutNeighbors(v) {
			if err := binary.Write(mw, binary.LittleEndian, [2]uint32{v, d}); err != nil {
				return err
			}
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, h.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary reads a graph written by WriteBinary. Version-2 files carry a
// CRC32 trailer, verified here; version-1 files (no trailer) still load.
func ReadBinary(r io.Reader) (*graph.Graph, error) {
	br := bufio.NewReader(r)
	h := crc32.NewIEEE()
	tr := io.TeeReader(br, h)
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(tr, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("loader: binary header: %v", err)
		}
	}
	if hdr[0] != binMagic {
		return nil, fmt.Errorf("loader: bad magic %#x", hdr[0])
	}
	if hdr[1] != 1 && hdr[1] != binVersion {
		return nil, fmt.Errorf("loader: unsupported binary version %d", hdr[1])
	}
	n, m := int(hdr[2]), int(hdr[3])
	if n > MaxVertices {
		return nil, fmt.Errorf("loader: binary header claims %d vertices, exceeds MaxVertices (%d)", n, MaxVertices)
	}
	// The header's m is unverified until the checksum at the end, so
	// reserve at most maxEdgePrealloc records up front and let real input
	// grow the slice past that; a forged count fails at EOF instead of
	// allocating gigabytes first.
	prealloc := m
	if prealloc > maxEdgePrealloc {
		prealloc = maxEdgePrealloc
	}
	edges := make([]graph.Edge, 0, prealloc)
	for i := 0; i < m; i++ {
		var pair [2]uint32
		if err := binary.Read(tr, binary.LittleEndian, &pair); err != nil {
			return nil, fmt.Errorf("loader: binary edge %d: %v (file truncated?)", i, err)
		}
		// Endpoints must respect the header's vertex count: WriteBinary
		// never emits anything else, and an out-of-range endpoint with
		// n == 0 would otherwise make graph.Build size the graph off the
		// bogus endpoint.
		if int(pair[0]) >= n || int(pair[1]) >= n {
			return nil, fmt.Errorf("loader: binary edge %d (%d → %d) outside %d vertices", i, pair[0], pair[1], n)
		}
		edges = append(edges, graph.Edge{Src: pair[0], Dst: pair[1]})
	}
	if hdr[1] >= 2 {
		want := h.Sum32()
		var got uint32
		if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
			return nil, fmt.Errorf("loader: binary checksum: %v (file truncated?)", err)
		}
		if got != want {
			return nil, fmt.Errorf("loader: binary checksum mismatch (file %#x, computed %#x): file is truncated or corrupted", got, want)
		}
	}
	return graph.Build(edges, graph.Options{NumVertices: n})
}

// LoadFile reads a graph from path, selecting the format by extension:
// .bin → binary, .mtx → Matrix Market, anything else → edge list. A
// trailing .gz is transparently decompressed first (e.g. web-Google.txt.gz
// exactly as SNAP distributes it).
func LoadFile(path string, opt graph.Options) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	name := path
	if strings.HasSuffix(name, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("loader: %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
		name = strings.TrimSuffix(name, ".gz")
	}
	switch {
	case strings.HasSuffix(name, ".bin"):
		return ReadBinary(r)
	case strings.HasSuffix(name, ".mtx"):
		return ReadMatrixMarket(r, opt)
	default:
		return ReadEdgeList(r, opt)
	}
}

// SaveFile writes a graph to path, selecting the format by extension the
// same way LoadFile does (.mtx is not supported for writing). The write is
// atomic — the data lands in a temp file that is fsynced and renamed over
// path — so a crash mid-save never leaves a half-written graph under the
// destination name.
func SaveFile(path string, g *graph.Graph) error {
	if strings.HasSuffix(path, ".mtx") {
		return fmt.Errorf("loader: writing MatrixMarket is not supported")
	}
	return fsafe.WriteFile(path, func(w io.Writer) error {
		if strings.HasSuffix(path, ".bin") {
			return WriteBinary(w, g)
		}
		return WriteEdgeList(w, g)
	})
}
