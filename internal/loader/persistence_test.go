package loader

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
)

func writeBinFile(t *testing.T, dir string) (string, []byte) {
	t.Helper()
	g, err := gen.RMAT(50, 200, gen.DefaultRMAT, 41)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "g.bin")
	if err := SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

func TestBinaryCorruptionDetected(t *testing.T) {
	// Flip a byte inside the edge region (past the 16-byte header): caught
	// by the endpoint bounds check when the flipped bits leave the vertex
	// range, by the checksum otherwise — either way it must not load.
	path, data := writeBinFile(t, t.TempDir())
	data[16+len(data)/2%16] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path, graph.Options{}); err == nil {
		t.Fatal("corrupted binary accepted")
	}

	// Flip the CRC trailer itself: the body parses cleanly, so only the
	// checksum can reject this one.
	path, data = writeBinFile(t, t.TempDir())
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadFile(path, graph.Options{})
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("corrupted trailer: got %v, want checksum mismatch", err)
	}
}

func TestBinaryTruncationDetected(t *testing.T) {
	path, data := writeBinFile(t, t.TempDir())
	if err := os.WriteFile(path, data[:len(data)-6], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path, graph.Options{}); err == nil {
		t.Fatal("truncated binary accepted")
	}
}

func TestSaveFileLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	writeBinFile(t, dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "g.bin" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("save dir holds %v, want only g.bin", names)
	}
}

// Version-1 binaries predate the CRC trailer; they must keep loading.
func TestBinaryV1StillLoads(t *testing.T) {
	g, err := gen.RMAT(30, 120, gen.DefaultRMAT, 42)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, x := range []uint32{binMagic, 1, uint32(g.N()), uint32(g.M())} {
		if err := binary.Write(&buf, binary.LittleEndian, x); err != nil {
			t.Fatal(err)
		}
	}
	for v := uint32(0); int(v) < g.N(); v++ {
		for _, d := range g.OutNeighbors(v) {
			if err := binary.Write(&buf, binary.LittleEndian, [2]uint32{v, d}); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("v1 binary rejected: %v", err)
	}
	assertSameGraph(t, g, got)
}

func TestBinaryRejectsFutureVersion(t *testing.T) {
	var buf bytes.Buffer
	for _, x := range []uint32{binMagic, 99, 0, 0} {
		if err := binary.Write(&buf, binary.LittleEndian, x); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ReadBinary(&buf); err == nil || !strings.Contains(err.Error(), "unsupported binary version") {
		t.Fatalf("future version: got %v, want unsupported binary version", err)
	}
}
