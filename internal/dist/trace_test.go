package dist

import (
	"testing"

	"ndgraph/internal/gen"
	"ndgraph/internal/trace"
)

// The distributed simulator records one trace event per adoption; the final
// per-vertex adopted value in the trace matches the returned labels.
func TestDistTraceRecordsAdoptions(t *testing.T) {
	g, err := gen.RMAT(300, 1800, gen.DefaultRMAT, 57)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(1 << 18)
	labels, res, err := WCC(g, Options{Workers: 4, Seed: 9, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if rec.Total() == 0 {
		t.Fatal("no adoptions recorded")
	}
	// Replay the adoption log sequentially: last recorded value per vertex
	// must equal the returned label (capture order is commit order — each
	// vertex is owned by one worker).
	final := map[uint32]uint64{}
	for _, ev := range rec.Events() {
		if ev.Writes != 1 {
			t.Fatalf("adoption event carries Writes=%d", ev.Writes)
		}
		final[ev.Vertex] = ev.Value
	}
	for v, val := range final {
		if uint64(labels[v]) != val {
			t.Fatalf("vertex %d: trace final %d, result %d", v, val, labels[v])
		}
	}
}
