package dist

import (
	"testing"
	"testing/quick"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/gen"
)

func TestRunValidation(t *testing.T) {
	g, _ := gen.Ring(4)
	if _, _, err := Run(nil, Propagation{}, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, _, err := Run(g, Propagation{}, Options{}); err == nil {
		t.Error("empty propagation accepted")
	}
	p := Propagation{
		Init:    func(uint32) uint64 { return 0 },
		Better:  func(c, cur uint64) bool { return c < cur },
		Message: func(v uint64, _ uint32) uint64 { return v },
	}
	if _, _, err := Run(g, p, Options{DuplicateProb: 1.5}); err == nil {
		t.Error("bad DuplicateProb accepted")
	}
}

func TestNoSeedsConvergesImmediately(t *testing.T) {
	g, _ := gen.Ring(4)
	p := Propagation{
		Init:    func(v uint32) uint64 { return uint64(v) },
		Better:  func(c, cur uint64) bool { return c < cur },
		Message: func(v uint64, _ uint32) uint64 { return v },
	}
	vals, res, err := Run(g, p, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Messages != 0 {
		t.Fatalf("res = %+v", res)
	}
	if vals[3] != 3 {
		t.Fatal("init values wrong")
	}
}

func TestDistWCCMatchesUnionFind(t *testing.T) {
	g, err := gen.RMAT(300, 1500, gen.DefaultRMAT, 121)
	if err != nil {
		t.Fatal(err)
	}
	want := algorithms.ReferenceWCC(g)
	for _, workers := range []int{1, 3, 8} {
		labels, res, err := WCC(g, Options{Workers: workers, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("workers=%d: did not converge", workers)
		}
		for v := range want {
			if labels[v] != want[v] {
				t.Fatalf("workers=%d: label[%d] = %d, want %d", workers, v, labels[v], want[v])
			}
		}
	}
}

func TestDistWCCWithDuplicates(t *testing.T) {
	// At-least-once delivery: duplicated messages must not change results
	// (monotone adoption is idempotent).
	g, err := gen.RMAT(200, 1000, gen.DefaultRMAT, 122)
	if err != nil {
		t.Fatal(err)
	}
	want := algorithms.ReferenceWCC(g)
	labels, res, err := WCC(g, Options{Workers: 4, Seed: 9, DuplicateProb: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if res.Duplicates == 0 {
		t.Fatal("duplication probability 0.3 injected no duplicates")
	}
	for v := range want {
		if labels[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, labels[v], want[v])
		}
	}
}

func TestDistSSSPMatchesDijkstra(t *testing.T) {
	g, err := gen.RMAT(250, 1500, gen.DefaultRMAT, 123)
	if err != nil {
		t.Fatal(err)
	}
	s := algorithms.NewSSSP(g, 0, 7)
	want := algorithms.ReferenceSSSP(g, 0, s.Weights)
	dist, res, err := SSSP(g, 0, s.Weights, Options{Workers: 4, Seed: 11, DuplicateProb: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
}

func TestDistSeedsAreReproducible(t *testing.T) {
	// Same seed → same message count (the delivery scrambling is
	// deterministic given one worker; with several workers, OS scheduling
	// still varies, so compare single-worker runs).
	g, err := gen.RMAT(150, 800, gen.DefaultRMAT, 124)
	if err != nil {
		t.Fatal(err)
	}
	_, res1, err := WCC(g, Options{Workers: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, res2, err := WCC(g, Options{Workers: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Messages != res2.Messages {
		t.Fatalf("same-seed single-worker runs delivered %d vs %d messages", res1.Messages, res2.Messages)
	}
}

func TestMaxMessagesCap(t *testing.T) {
	g, err := gen.Ring(100)
	if err != nil {
		t.Fatal(err)
	}
	labels, res, err := WCC(g, Options{Workers: 2, Seed: 1, MaxMessages: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("capped run reported convergence")
	}
	_ = labels
}

func TestDistQuickRandomGraphs(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(60, 240, seed)
		if err != nil {
			return false
		}
		want := algorithms.ReferenceWCC(g)
		labels, res, err := WCC(g, Options{Workers: 4, Seed: seed, DuplicateProb: 0.2})
		if err != nil || !res.Converged {
			return false
		}
		for v := range want {
			if labels[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDistWCC(b *testing.B) {
	g, err := gen.RMAT(1000, 8000, gen.DefaultRMAT, 125)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := WCC(g, Options{Workers: 4, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
