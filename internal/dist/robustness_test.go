package dist

import (
	"context"
	"errors"
	"testing"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/gen"
)

// Message loss with ack/retransmit keeps delivery at-least-once, which is
// all the monotone-adoption argument needs: WCC must still land on the
// exact union-find labels.
func TestDistWCCWithDrops(t *testing.T) {
	g, err := gen.RMAT(200, 1000, gen.DefaultRMAT, 131)
	if err != nil {
		t.Fatal(err)
	}
	want := algorithms.ReferenceWCC(g)
	labels, res, err := WCC(g, Options{Workers: 4, Seed: 13, DropProb: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if res.Drops == 0 {
		t.Fatal("drop probability 0.1 lost no deliveries")
	}
	for v := range want {
		if labels[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d (drops %d)", v, labels[v], want[v], res.Drops)
		}
	}
}

func TestDistWCCSurvivesHeavyLoss(t *testing.T) {
	g, err := gen.RMAT(100, 500, gen.DefaultRMAT, 132)
	if err != nil {
		t.Fatal(err)
	}
	want := algorithms.ReferenceWCC(g)
	labels, res, err := WCC(g, Options{Workers: 4, Seed: 14, DropProb: 0.8, DuplicateProb: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge under 80% loss")
	}
	for v := range want {
		if labels[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, labels[v], want[v])
		}
	}
}

func TestDistZeroProbsInjectNothing(t *testing.T) {
	g, err := gen.RMAT(100, 500, gen.DefaultRMAT, 133)
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := WCC(g, Options{Workers: 3, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Duplicates != 0 || res.Drops != 0 {
		t.Fatalf("zero-probability run injected faults: %+v", res)
	}
}

func TestDistNearOneDuplicateProb(t *testing.T) {
	g, err := gen.RMAT(100, 500, gen.DefaultRMAT, 134)
	if err != nil {
		t.Fatal(err)
	}
	want := algorithms.ReferenceWCC(g)
	labels, res, err := WCC(g, Options{Workers: 4, Seed: 16, DuplicateProb: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Duplicates == 0 {
		t.Fatalf("res = %+v", res)
	}
	for v := range want {
		if labels[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, labels[v], want[v])
		}
	}
}

func TestDistSingleWorkerWithDrops(t *testing.T) {
	g, err := gen.RMAT(100, 500, gen.DefaultRMAT, 135)
	if err != nil {
		t.Fatal(err)
	}
	want := algorithms.ReferenceWCC(g)
	labels, res, err := WCC(g, Options{Workers: 1, Seed: 17, DropProb: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for v := range want {
		if labels[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, labels[v], want[v])
		}
	}
}

func TestDistInvalidDropProbRejected(t *testing.T) {
	g, _ := gen.Ring(4)
	for _, bad := range []float64{-0.1, 1, 1.5} {
		if _, _, err := WCC(g, Options{DropProb: bad}); err == nil {
			t.Errorf("DropProb %v accepted", bad)
		}
	}
}

func TestDistContextCancelledBeforeRun(t *testing.T) {
	g, err := gen.RMAT(200, 1000, gen.DefaultRMAT, 136)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, res, err := WCC(g, Options{Workers: 4, Seed: 18, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Converged {
		t.Fatal("cancelled run reported convergence")
	}
}
