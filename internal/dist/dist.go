// Package dist simulates distributed nondeterministic execution — the
// last scenario of the paper's future-work list ("extending the
// applicability of results in this paper to more scenarios, such as …
// distributed systems, by relaxing the system model").
//
// The simulation partitions vertices across W workers (simulated
// machines), each with an unbounded inbox. Monotone propagation
// algorithms (WCC, BFS, SSSP — the Theorem 2 family) run as message
// passing: adopting a better value broadcasts derived values along
// out-edges. The *network* is adversarial in exactly the ways a real
// cluster is and a shared-memory barrier is not:
//
//   - messages are delivered out of order (each worker processes a
//     uniformly random pending message, seeded for reproducibility);
//   - messages may be duplicated (configurable probability).
//
// Message delivery is atomic by construction, so the shared-memory
// per-operation atomicity requirement translates to "no torn messages" —
// trivially satisfied — and the theorem's monotonicity premise does the
// rest: stale or duplicated messages lose to the Better test and the
// computation converges to the same fixed point as a sequential run.
//
// Silently dropping messages is *not* tolerated (a lost improvement is
// never retried), mirroring the push-mode ModePlain result. The simulator
// instead models a lossy network the way real clusters cope with one:
// DropProb discards deliveries, and the sender's ack timeout retransmits
// the same message with backoff (at-least-once delivery). Retransmission
// restores the "no lost update without a retry task" premise, so
// convergence survives arbitrary loss rates below 1.
package dist

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ndgraph/internal/graph"
	"ndgraph/internal/obs"
	"ndgraph/internal/rng"
	"ndgraph/internal/trace"
)

// sampleWindow is the per-worker delivery count between telemetry samples:
// each simulated machine emits one event per window of messages it
// processes, plus one final aggregate at quiescence.
const sampleWindow = 8192

// Propagation declares a monotone message-passing computation.
type Propagation struct {
	// Init returns vertex v's starting value.
	Init func(v uint32) uint64
	// Better reports whether candidate strictly improves on current.
	Better func(candidate, current uint64) bool
	// Message derives the value sent along canonical edge e when the
	// sending vertex holds val.
	Message func(val uint64, e uint32) uint64
	// Seeds are the vertices whose initial values are broadcast first
	// (every vertex for WCC, the source for BFS/SSSP).
	Seeds []uint32
}

// Options configures the simulated cluster.
type Options struct {
	// Workers is the number of simulated machines; < 1 = GOMAXPROCS.
	Workers int
	// DuplicateProb duplicates each sent message with this probability
	// (at-least-once delivery). Must be in [0, 1).
	DuplicateProb float64
	// DropProb discards each delivery with this probability; the sender's
	// ack timeout then retransmits the message with backoff, so delivery
	// remains at-least-once. Must be in [0, 1).
	DropProb float64
	// Seed drives the delivery-order scrambling, duplication, and drops.
	Seed uint64
	// MaxMessages caps total deliveries; 0 means 1<<26.
	MaxMessages int64
	// Context, when non-nil, cancels the run: workers stop processing,
	// inboxes drain, and Run returns partial values plus the context's
	// error.
	Context context.Context
	// Observer, when non-nil, receives one telemetry event per worker per
	// sampleWindow deliveries plus a final aggregate carrying the run's
	// duplicate and retransmission totals.
	Observer *obs.Observer
	// Trace, when non-nil, records one event per *adoption* (a delivery
	// that improved its destination): iteration 0, worker = the owning
	// machine, Vertex = destination, Writes = 1, Value = the adopted word.
	// The capture order is the run's nondeterministic adoption order.
	Trace *trace.Recorder
}

// Result reports a distributed run.
type Result struct {
	Messages   int64 // messages delivered (including duplicates)
	Duplicates int64 // extra deliveries injected
	Drops      int64 // deliveries lost and retransmitted
	Converged  bool
	Duration   time.Duration
}

type message struct {
	to      uint32
	val     uint64
	attempt uint8 // retransmission count (drives backoff)
}

// backoffCapShift caps the exponential term of the retransmission backoff:
// the deterministic part never exceeds 1<<backoffCapShift yields.
const backoffCapShift = 6

// backoffYields returns how many scheduler yields a retransmission backs
// off before re-entering the inbox: an exponential term in the attempt
// count (capped at 1<<backoffCapShift) plus a uniformly random jitter of
// the same magnitude. The jitter is the point — with a purely deterministic
// schedule, two messages whose retransmissions collided once re-collide on
// every subsequent attempt, exactly the synchronized-retry pathology real
// networks avoid by jittering timeouts. The result lies in [base, 2*base]
// where base = 1 << min(attempt-1, backoffCapShift); attempt 0 (a first
// transmission) backs off not at all.
func backoffYields(attempt uint8, r *rng.Xoshiro256StarStar) int {
	if attempt == 0 {
		return 0
	}
	shift := uint(attempt - 1)
	if shift > backoffCapShift {
		shift = backoffCapShift
	}
	base := 1 << shift
	return base + r.Intn(base+1)
}

// inbox is an unbounded mailbox with random-order removal: the delivery
// scrambler. Unbounded queues keep the simulation deadlock-free (workers
// never block on send).
type inbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
	closed  bool
	r       *rng.Xoshiro256StarStar
}

func newInbox(seed uint64) *inbox {
	ib := &inbox{r: rng.New(seed)}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) put(m message) {
	ib.mu.Lock()
	ib.pending = append(ib.pending, m)
	ib.mu.Unlock()
	ib.cond.Signal()
}

// take removes a uniformly random pending message; ok is false when the
// inbox has been closed and drained.
func (ib *inbox) take() (message, bool) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for len(ib.pending) == 0 && !ib.closed {
		ib.cond.Wait()
	}
	if len(ib.pending) == 0 {
		return message{}, false
	}
	i := ib.r.Intn(len(ib.pending))
	last := len(ib.pending) - 1
	m := ib.pending[i]
	ib.pending[i] = ib.pending[last]
	ib.pending = ib.pending[:last]
	return m, true
}

func (ib *inbox) close() {
	ib.mu.Lock()
	ib.closed = true
	ib.mu.Unlock()
	ib.cond.Broadcast()
}

// Run executes the propagation on a simulated cluster and returns the
// converged vertex values.
func Run(g *graph.Graph, p Propagation, opts Options) ([]uint64, Result, error) {
	if g == nil {
		return nil, Result{}, fmt.Errorf("dist: nil graph")
	}
	if p.Init == nil || p.Better == nil || p.Message == nil {
		return nil, Result{}, fmt.Errorf("dist: Propagation requires Init, Better, and Message")
	}
	if opts.DuplicateProb < 0 || opts.DuplicateProb >= 1 {
		return nil, Result{}, fmt.Errorf("dist: DuplicateProb %v out of [0, 1)", opts.DuplicateProb)
	}
	if opts.DropProb < 0 || opts.DropProb >= 1 {
		return nil, Result{}, fmt.Errorf("dist: DropProb %v out of [0, 1)", opts.DropProb)
	}
	if opts.Workers < 1 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Workers > g.N() && g.N() > 0 {
		opts.Workers = g.N()
	}
	if opts.MaxMessages <= 0 {
		opts.MaxMessages = 1 << 26
	}

	n := g.N()
	values := make([]uint64, n)
	for v := uint32(0); int(v) < n; v++ {
		values[v] = p.Init(v)
	}
	res := Result{Converged: true}
	if n == 0 || len(p.Seeds) == 0 {
		return values, res, nil
	}

	W := opts.Workers
	ownerOf := func(v uint32) int { return int(v) * W / n }
	inboxes := make([]*inbox, W)
	for w := range inboxes {
		inboxes[w] = newInbox(rng.Mix64(opts.Seed + uint64(w)))
	}

	var inflight, delivered, dups, drops atomic.Int64
	var stopped atomic.Bool
	start := time.Now()

	// Per-worker telemetry windows (worker w owns tallies[w]; the final
	// aggregate reads them after the WaitGroup barrier).
	var samples atomic.Int64
	type tally struct {
		delivered, adopted int64
		_                  [48]byte // pad to a cache line against false sharing
	}
	var tallies []tally
	if opts.Observer != nil {
		tallies = make([]tally, W)
	}
	emitSample := func(t *tally, durationNs int64) {
		pending := inflight.Load()
		opts.Observer.Emit(obs.Event{
			Engine:        obs.EngineDist,
			Iter:          samples.Add(1) - 1,
			Scheduled:     pending,
			Updates:       t.adopted,
			Residual:      float64(pending) / float64(n),
			RWConflicts:   -1,
			WWConflicts:   -1,
			DurationNanos: durationNs,
			Messages:      t.delivered,
		})
		t.delivered, t.adopted = 0, 0
	}

	// send routes a message (possibly duplicated) to its owner's inbox.
	// The caller must hold its own rng for the duplication draw.
	send := func(m message, r *rng.Xoshiro256StarStar) {
		if stopped.Load() {
			return
		}
		copies := 1
		if opts.DuplicateProb > 0 && r.Float64() < opts.DuplicateProb {
			copies = 2
			dups.Add(1)
		}
		for c := 0; c < copies; c++ {
			inflight.Add(1)
			inboxes[ownerOf(m.to)].put(m)
		}
	}

	// broadcast sends v's current value along all its out-edges.
	broadcast := func(v uint32, val uint64, r *rng.Xoshiro256StarStar) {
		lo, _ := g.OutEdgeIndex(v)
		for k, d := range g.OutNeighbors(v) {
			send(message{to: d, val: p.Message(val, lo+uint32(k))}, r)
		}
	}

	// Seed the system.
	seedRng := rng.New(rng.Mix64(opts.Seed ^ 0x5eed))
	for _, v := range p.Seeds {
		broadcast(v, values[v], seedRng)
	}
	if inflight.Load() == 0 {
		return values, res, nil
	}

	var wg sync.WaitGroup
	closeAll := func() {
		for _, ib := range inboxes {
			ib.close()
		}
	}
	for w := 0; w < W; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(rng.Mix64(opts.Seed + 0x9e37 + uint64(w)))
			for {
				m, ok := inboxes[w].take()
				if !ok {
					return
				}
				if ctx := opts.Context; ctx != nil && ctx.Err() != nil {
					stopped.Store(true)
				}
				if !stopped.Load() && opts.DropProb > 0 && r.Float64() < opts.DropProb {
					// Lossy link: this delivery is lost. The sender's ack
					// timeout fires and retransmits the same message after
					// a jittered exponential backoff; the in-flight unit
					// rides the retransmitted copy, so quiescence detection
					// is unaffected.
					drops.Add(1)
					if m.attempt < math.MaxUint8 {
						m.attempt++
					}
					for b, n := 0, backoffYields(m.attempt, r); b < n; b++ {
						runtime.Gosched()
					}
					inboxes[w].put(m)
					continue
				}
				switch {
				case stopped.Load():
					// Draining a stopped run: retire the message unprocessed.
				case delivered.Add(1) > opts.MaxMessages:
					stopped.Store(true)
				default:
					adopted := p.Better(m.val, values[m.to])
					if adopted {
						// Only the owner worker touches values[m.to], so the
						// adopt is race-free.
						values[m.to] = m.val
						if t := opts.Trace; t != nil {
							t.Record(0, w, m.to, 1, m.val)
						}
						broadcast(m.to, m.val, r)
					}
					if tallies != nil {
						t := &tallies[w]
						t.delivered++
						if adopted {
							t.adopted++
						}
						if t.delivered >= sampleWindow {
							emitSample(t, 0)
						}
					}
				}
				if inflight.Add(-1) == 0 {
					closeAll()
				}
			}
		}(w)
	}
	wg.Wait()

	res.Messages = delivered.Load()
	res.Duplicates = dups.Load()
	res.Drops = drops.Load()
	if o := opts.Observer; o != nil {
		// Final aggregate: leftover windows from every worker plus the
		// run-total duplicate/retransmission counts (sampled nowhere else,
		// so the counters stay exact).
		var agg tally
		for w := range tallies {
			agg.delivered += tallies[w].delivered
			agg.adopted += tallies[w].adopted
		}
		o.Emit(obs.Event{
			Engine:        obs.EngineDist,
			Iter:          samples.Add(1) - 1,
			Updates:       agg.adopted,
			RWConflicts:   -1,
			WWConflicts:   -1,
			DurationNanos: time.Since(start).Nanoseconds(),
			Messages:      agg.delivered,
			Duplicates:    res.Duplicates,
			Drops:         res.Drops,
		})
	}
	if stopped.Load() {
		res.Converged = false
		if res.Messages > opts.MaxMessages {
			res.Messages = opts.MaxMessages
		}
	}
	res.Duration = time.Since(start)
	if ctx := opts.Context; ctx != nil && ctx.Err() != nil && !res.Converged {
		return values, res, ctx.Err()
	}
	return values, res, nil
}

// WCC runs distributed weakly-connected components (labels travel both
// directions, so the graph is symmetrized first).
func WCC(g *graph.Graph, opts Options) ([]uint32, Result, error) {
	u := g.Undirected()
	seeds := make([]uint32, u.N())
	for i := range seeds {
		seeds[i] = uint32(i)
	}
	vals, res, err := Run(u, Propagation{
		Init:    func(v uint32) uint64 { return uint64(v) },
		Better:  func(c, cur uint64) bool { return c < cur },
		Message: func(val uint64, _ uint32) uint64 { return val },
		Seeds:   seeds,
	}, opts)
	if err != nil {
		return nil, res, err
	}
	labels := make([]uint32, len(vals))
	for v, w := range vals {
		labels[v] = uint32(w)
	}
	return labels, res, nil
}

// SSSP runs distributed single-source shortest paths over the given
// per-edge weights (canonical edge order of g).
func SSSP(g *graph.Graph, source uint32, weights []float64, opts Options) ([]float64, Result, error) {
	infBits := math.Float64bits(math.Inf(1))
	vals, res, err := Run(g, Propagation{
		Init: func(v uint32) uint64 {
			if v == source {
				return 0
			}
			return infBits
		},
		Better: func(c, cur uint64) bool { return math.Float64frombits(c) < math.Float64frombits(cur) },
		Message: func(val uint64, e uint32) uint64 {
			return math.Float64bits(math.Float64frombits(val) + weights[e])
		},
		Seeds: []uint32{source},
	}, opts)
	if err != nil {
		return nil, res, err
	}
	dist := make([]float64, len(vals))
	for v, w := range vals {
		dist[v] = math.Float64frombits(w)
	}
	return dist, res, nil
}
