package dist

import (
	"sort"
	"sync"
	"testing"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/gen"
)

// The robustness suite exercises duplication and loss separately (and WCC
// under both), but nothing previously forced the *same run* to both
// duplicate and reorder-after-retransmit SSSP messages — the adversarial
// combination the paper's at-least-once argument actually has to survive:
// a dropped improvement is retransmitted with backoff, arrives long after
// newer messages overtook it, and its duplicate arrives in yet another
// position. These tests close that gap.

// TestDistSSSPDuplicatedAndReorderedDelivery runs SSSP end-to-end under
// heavy simultaneous duplication and loss. The assertions are exact: the
// Better test must make every stale, duplicated, or resurrected-by-
// retransmission delivery lose, so the converged distances equal
// Dijkstra's bit for bit — and the run must actually have injected both
// fault kinds, so a quiet network cannot pass the test vacuously.
func TestDistSSSPDuplicatedAndReorderedDelivery(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		g, err := gen.RMAT(150, 900, gen.DefaultRMAT, 400+seed)
		if err != nil {
			t.Fatal(err)
		}
		src := uint32(0)
		best := -1
		for v := uint32(0); int(v) < g.N(); v++ {
			if d := g.OutDegree(v); d > best {
				src, best = v, d
			}
		}
		s := algorithms.NewSSSP(g, src, seed+5)
		want := algorithms.ReferenceSSSP(g, src, s.Weights)

		got, res, err := SSSP(g, src, s.Weights, Options{
			Workers:       4,
			Seed:          seed,
			DuplicateProb: 0.4,
			DropProb:      0.4,
		})
		if err != nil || !res.Converged {
			t.Fatalf("seed %d: %v (converged=%v)", seed, err, res.Converged)
		}
		if res.Duplicates == 0 {
			t.Fatalf("seed %d: DuplicateProb 0.4 injected no duplicates — the test exercised nothing", seed)
		}
		if res.Drops == 0 {
			t.Fatalf("seed %d: DropProb 0.4 dropped no deliveries — the test exercised nothing", seed)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("seed %d: dist[%d] = %v, dijkstra %v (after %d msgs, %d dups, %d drops)",
					seed, v, got[v], want[v], res.Messages, res.Duplicates, res.Drops)
			}
		}
	}
}

// TestInboxConservation pins the mailbox's conservation law: random-order
// removal may scramble arbitrarily, but every message put by any sender is
// taken exactly once — the scrambler itself must never duplicate or lose
// (duplication and loss are injected *around* it, and accounted).
func TestInboxConservation(t *testing.T) {
	const senders, perSender = 8, 500
	ib := newInbox(77)

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				// Encode (sender, sequence) so each message is unique.
				ib.put(message{to: uint32(s), val: uint64(s*perSender + i)})
			}
		}(s)
	}
	// Concurrent takers drain while senders are still putting, covering
	// the cond-wait path as well as the fast path.
	var mu sync.Mutex
	taken := make([]uint64, 0, senders*perSender)
	var tg sync.WaitGroup
	for w := 0; w < 4; w++ {
		tg.Add(1)
		go func() {
			defer tg.Done()
			for {
				m, ok := ib.take()
				if !ok {
					return
				}
				mu.Lock()
				taken = append(taken, m.val)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	ib.close()
	tg.Wait()

	if len(taken) != senders*perSender {
		t.Fatalf("took %d messages, put %d", len(taken), senders*perSender)
	}
	sort.Slice(taken, func(i, j int) bool { return taken[i] < taken[j] })
	for i, v := range taken {
		if v != uint64(i) {
			t.Fatalf("conservation violated at rank %d: got val %d (duplicate or loss in the mailbox)", i, v)
		}
	}

	// Closed-and-drained: further takes must report ok=false, not block.
	if _, ok := ib.take(); ok {
		t.Fatal("take on a closed, drained inbox returned a message")
	}
}

// TestInboxReordersDelivery documents that the mailbox really is the
// delivery scrambler: with a seeded RNG and many pending messages, removal
// order must differ from insertion order (otherwise every "reordered
// delivery" test in this package is testing FIFO by accident).
func TestInboxReordersDelivery(t *testing.T) {
	const n = 256
	ib := newInbox(5)
	for i := 0; i < n; i++ {
		ib.put(message{val: uint64(i)})
	}
	ib.close()
	inOrder := true
	for i := 0; i < n; i++ {
		m, ok := ib.take()
		if !ok {
			t.Fatalf("inbox drained after %d of %d", i, n)
		}
		if m.val != uint64(i) {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("256 messages came out in FIFO order; the scrambler is not scrambling")
	}
}
