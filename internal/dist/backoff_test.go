package dist

import (
	"testing"

	"ndgraph/internal/rng"
)

// The backoff schedule must stay within its documented envelope: attempt 0
// yields nothing, attempt a >= 1 yields between base and 2*base inclusive,
// where base = 1 << min(a-1, backoffCapShift). Unbounded growth would turn
// a lossy link into a livelock; no growth would keep retransmits colliding.
func TestBackoffScheduleBounds(t *testing.T) {
	r := rng.New(99)
	for attempt := 0; attempt <= 20; attempt++ {
		base := 0
		if attempt >= 1 {
			shift := uint(attempt - 1)
			if shift > backoffCapShift {
				shift = backoffCapShift
			}
			base = 1 << shift
		}
		for draw := 0; draw < 200; draw++ {
			got := backoffYields(uint8(attempt), r)
			if attempt == 0 {
				if got != 0 {
					t.Fatalf("attempt 0 backed off %d yields, want 0", got)
				}
				continue
			}
			if got < base || got > 2*base {
				t.Fatalf("attempt %d: backoff %d outside [%d, %d]", attempt, got, base, 2*base)
			}
		}
	}
}

// The exponential term must be monotone in the attempt count up to the cap:
// the minimum possible backoff of attempt a+1 is at least the minimum of
// attempt a, and the cap keeps the maximum finite.
func TestBackoffScheduleGrowsThenCaps(t *testing.T) {
	minFor := func(attempt uint8) int {
		lo := int(^uint(0) >> 1)
		r := rng.New(uint64(attempt) + 7)
		for i := 0; i < 500; i++ {
			if got := backoffYields(attempt, r); got < lo {
				lo = got
			}
		}
		return lo
	}
	prev := 0
	for a := uint8(1); a <= backoffCapShift+1; a++ {
		lo := minFor(a)
		if lo < prev {
			t.Fatalf("attempt %d minimum backoff %d below attempt %d's %d", a, lo, a-1, prev)
		}
		prev = lo
	}
	capped := 1 << backoffCapShift
	for a := uint8(backoffCapShift + 1); a < backoffCapShift+5; a++ {
		r := rng.New(uint64(a))
		for i := 0; i < 200; i++ {
			if got := backoffYields(a, r); got > 2*capped {
				t.Fatalf("attempt %d: backoff %d exceeds the cap envelope %d", a, got, 2*capped)
			}
		}
	}
}

// The jitter must actually vary: identical retransmission attempts from
// different draws should not all land on one value (that is the collision
// pathology the jitter exists to break).
func TestBackoffScheduleJitters(t *testing.T) {
	r := rng.New(7)
	for _, attempt := range []uint8{2, 4, 8} {
		seen := map[int]bool{}
		for i := 0; i < 300; i++ {
			seen[backoffYields(attempt, r)] = true
		}
		if len(seen) < 2 {
			t.Fatalf("attempt %d: %d draws produced a single backoff value (no jitter)", attempt, 300)
		}
	}
}
