// Package gen synthesizes deterministic graphs for tests, examples, and the
// experiment harness.
//
// The paper evaluates on four real-world directed graphs (Table I):
// web-BerkStan, web-Google, soc-LiveJournal1 (SNAP) and cage15 (UF Sparse
// Matrix Collection). Those datasets are not available offline, so this
// package provides seeded generators whose *structural class* matches each
// original — heavy-tailed R-MAT/preferential-attachment graphs for the web
// and social graphs, and a quasi-regular banded graph for the cage matrix.
// The paper's phenomena (conflict classes on edges, nondeterministic
// convergence, write-write recovery, PageRank rank variance) depend on those
// structural classes rather than on the particular crawls, so the analogs
// preserve the relevant behavior. See DESIGN.md §4.
//
// All generators are deterministic functions of their parameters and seed.
package gen

import (
	"fmt"

	"ndgraph/internal/graph"
	"ndgraph/internal/rng"
)

// RMATParams configures the recursive-matrix (R-MAT) generator of
// Chakrabarti, Zhan, and Faloutsos. A, B, C, D are the quadrant
// probabilities (A+B+C+D must be ~1); larger A yields heavier skew.
type RMATParams struct {
	A, B, C, D float64
	// NoiseAmp perturbs the quadrant probabilities per recursion level to
	// avoid staircase artifacts; 0 disables.
	NoiseAmp float64
}

// DefaultRMAT is the classic Graph500-style parameterization.
var DefaultRMAT = RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05, NoiseAmp: 0.1}

// RMAT generates a directed graph with n vertices (rounded up to a power of
// two internally, then relabeled down) and m edges using the R-MAT process.
// Self-loops are dropped and parallel edges deduplicated, so the final edge
// count may be slightly below m.
func RMAT(n, m int, p RMATParams, seed uint64) (*graph.Graph, error) {
	if n <= 0 || m < 0 {
		return nil, fmt.Errorf("gen: RMAT needs n > 0, m >= 0 (got n=%d m=%d)", n, m)
	}
	if s := p.A + p.B + p.C + p.D; s < 0.99 || s > 1.01 {
		return nil, fmt.Errorf("gen: RMAT quadrant probabilities sum to %v, want 1", s)
	}
	levels := 0
	for 1<<levels < n {
		levels++
	}
	r := rng.New(seed)
	// Random relabeling hides the power-of-two recursion structure and
	// spreads the hubs across the label space (the paper's dispatch is by
	// label blocks, so hub placement matters for load balance realism).
	relabel := r.Perm(1 << levels)
	es := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		src, dst := 0, 0
		for l := 0; l < levels; l++ {
			a, b, c := p.A, p.B, p.C
			if p.NoiseAmp > 0 {
				mu := 1 + p.NoiseAmp*(2*r.Float64()-1)
				a *= mu
				b *= mu
				c *= mu
			}
			u := r.Float64() * (a + b + c + p.D)
			switch {
			case u < a:
				// top-left: nothing to add
			case u < a+b:
				dst |= 1 << l
			case u < a+b+c:
				src |= 1 << l
			default:
				src |= 1 << l
				dst |= 1 << l
			}
		}
		s, d := relabel[src], relabel[dst]
		if s >= n || d >= n || s == d {
			continue // outside the requested vertex range or self-loop
		}
		es = append(es, graph.Edge{Src: uint32(s), Dst: uint32(d)})
	}
	return graph.Build(es, graph.Options{NumVertices: n, Dedup: true})
}

// PreferentialAttachment generates a directed graph by the Barabási–Albert
// process: vertices arrive one at a time and attach k out-edges to targets
// drawn proportionally to current degree (plus one smoothing). Produces a
// heavy-tailed in-degree distribution like a social graph.
func PreferentialAttachment(n, k int, seed uint64) (*graph.Graph, error) {
	if n <= 0 || k <= 0 {
		return nil, fmt.Errorf("gen: PreferentialAttachment needs n, k > 0 (got n=%d k=%d)", n, k)
	}
	r := rng.New(seed)
	// targets is the repeated-endpoint trick: every edge endpoint appears
	// once, so uniform draws from it are degree-proportional.
	targets := make([]uint32, 0, 2*n*k)
	es := make([]graph.Edge, 0, n*k)
	for v := 0; v < n; v++ {
		for j := 0; j < k; j++ {
			var dst uint32
			if len(targets) == 0 || v == 0 {
				if v == 0 {
					break // first vertex has nobody to attach to
				}
				dst = uint32(r.Intn(v))
			} else if r.Float64() < 0.15 {
				// Uniform smoothing: occasional random target keeps the
				// tail populated.
				dst = uint32(r.Intn(v))
			} else {
				dst = targets[r.Intn(len(targets))]
			}
			if int(dst) == v {
				continue
			}
			es = append(es, graph.Edge{Src: uint32(v), Dst: dst})
			targets = append(targets, uint32(v), dst)
		}
	}
	return graph.Build(es, graph.Options{NumVertices: n, Dedup: true})
}

// ErdosRenyi generates a directed G(n, m) graph: m edges drawn uniformly
// (self-loops excluded, duplicates allowed unless dedup).
func ErdosRenyi(n, m int, seed uint64) (*graph.Graph, error) {
	if n <= 1 || m < 0 {
		return nil, fmt.Errorf("gen: ErdosRenyi needs n > 1, m >= 0 (got n=%d m=%d)", n, m)
	}
	r := rng.New(seed)
	es := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		s := uint32(r.Intn(n))
		d := uint32(r.Intn(n - 1))
		if d >= s {
			d++
		}
		es = append(es, graph.Edge{Src: s, Dst: d})
	}
	return graph.Build(es, graph.Options{NumVertices: n, Dedup: true})
}

// Banded generates a quasi-regular "matrix band" graph: each vertex i links
// to deg neighbors at offsets drawn uniformly from [1, bandwidth], in both
// directions around a ring. This is the structural analog of the cage
// matrices (near-uniform degree, strong locality, low skew).
func Banded(n, deg, bandwidth int, seed uint64) (*graph.Graph, error) {
	if n <= 2 || deg <= 0 || bandwidth <= 0 || bandwidth >= n {
		return nil, fmt.Errorf("gen: Banded needs n > 2, deg > 0, 0 < bandwidth < n (got n=%d deg=%d bw=%d)", n, deg, bandwidth)
	}
	r := rng.New(seed)
	es := make([]graph.Edge, 0, n*deg)
	for v := 0; v < n; v++ {
		for j := 0; j < deg; j++ {
			off := 1 + r.Intn(bandwidth)
			if r.Intn(2) == 0 {
				off = -off
			}
			d := ((v+off)%n + n) % n
			if d == v {
				continue
			}
			es = append(es, graph.Edge{Src: uint32(v), Dst: uint32(d)})
		}
	}
	return graph.Build(es, graph.Options{NumVertices: n, Dedup: true})
}

// Grid generates a directed 2D lattice of rows×cols vertices with edges to
// the right and down neighbor (and optionally back). Road-network-like;
// used by the shortestpath example.
func Grid(rows, cols int, bidirectional bool, seed uint64) (*graph.Graph, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("gen: Grid needs rows, cols > 0 (got %dx%d)", rows, cols)
	}
	_ = seed // grid is fully deterministic; seed kept for interface symmetry
	n := rows * cols
	es := make([]graph.Edge, 0, 2*n)
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				es = append(es, graph.Edge{Src: id(r, c), Dst: id(r, c+1)})
				if bidirectional {
					es = append(es, graph.Edge{Src: id(r, c+1), Dst: id(r, c)})
				}
			}
			if r+1 < rows {
				es = append(es, graph.Edge{Src: id(r, c), Dst: id(r+1, c)})
				if bidirectional {
					es = append(es, graph.Edge{Src: id(r+1, c), Dst: id(r, c)})
				}
			}
		}
	}
	return graph.Build(es, graph.Options{NumVertices: n})
}

// Ring generates a directed cycle 0→1→…→n-1→0.
func Ring(n int) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: Ring needs n > 0 (got %d)", n)
	}
	es := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		es[i] = graph.Edge{Src: uint32(i), Dst: uint32((i + 1) % n)}
	}
	return graph.Build(es, graph.Options{NumVertices: n})
}

// Chain generates a directed path 0→1→…→n-1. Chains maximize the
// iteration count of traversal algorithms, making them the worst case for
// the convergence proofs' "chain from v0 to v" argument (Theorem 1).
func Chain(n int) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: Chain needs n > 0 (got %d)", n)
	}
	es := make([]graph.Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		es = append(es, graph.Edge{Src: uint32(i), Dst: uint32(i + 1)})
	}
	return graph.Build(es, graph.Options{NumVertices: n})
}

// Star generates a hub-and-spoke graph: vertex 0 points to all others and
// all others point back. The single hub concentrates conflicts on its
// incident edges — an adversarial input for nondeterministic execution.
func Star(n int) (*graph.Graph, error) {
	if n <= 1 {
		return nil, fmt.Errorf("gen: Star needs n > 1 (got %d)", n)
	}
	es := make([]graph.Edge, 0, 2*(n-1))
	for i := 1; i < n; i++ {
		es = append(es, graph.Edge{Src: 0, Dst: uint32(i)}, graph.Edge{Src: uint32(i), Dst: 0})
	}
	return graph.Build(es, graph.Options{NumVertices: n})
}

// Complete generates the complete directed graph on n vertices (no
// self-loops). Only sensible for small n.
func Complete(n int) (*graph.Graph, error) {
	if n <= 0 || n > 4096 {
		return nil, fmt.Errorf("gen: Complete needs 0 < n <= 4096 (got %d)", n)
	}
	es := make([]graph.Edge, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				es = append(es, graph.Edge{Src: uint32(i), Dst: uint32(j)})
			}
		}
	}
	return graph.Build(es, graph.Options{NumVertices: n})
}
