package gen

import (
	"fmt"

	"ndgraph/internal/graph"
)

// Dataset identifies one of the paper's Table I graphs (synthetic analog).
type Dataset int

const (
	// WebBerkStan models web-BerkStan: 685,231 vertices, 7,600,595 edges —
	// a highly skewed web crawl of berkeley.edu/stanford.edu.
	WebBerkStan Dataset = iota
	// WebGoogle models web-Google: 916,428 vertices, 5,105,039 edges.
	WebGoogle
	// SocLiveJournal models soc-LiveJournal1: 4,847,571 vertices,
	// 68,993,773 edges — a social network with heavy-tailed degrees and
	// high reciprocity.
	SocLiveJournal
	// Cage15 models cage15: 5,154,859 vertices, 99,199,551 edges — a
	// quasi-regular DNA-electrophoresis matrix with ~19 average degree and
	// banded structure.
	Cage15
	numDatasets
)

// String returns the dataset's canonical name (matching the paper).
func (d Dataset) String() string {
	switch d {
	case WebBerkStan:
		return "web-berkstan"
	case WebGoogle:
		return "web-google"
	case SocLiveJournal:
		return "soc-livejournal1"
	case Cage15:
		return "cage15"
	default:
		return fmt.Sprintf("dataset(%d)", int(d))
	}
}

// AllDatasets lists the four Table I analogs in paper order.
func AllDatasets() []Dataset {
	return []Dataset{WebBerkStan, WebGoogle, SocLiveJournal, Cage15}
}

// ParseDataset maps a name (as printed by String) back to a Dataset.
func ParseDataset(name string) (Dataset, error) {
	for d := Dataset(0); d < numDatasets; d++ {
		if d.String() == name {
			return d, nil
		}
	}
	return 0, fmt.Errorf("gen: unknown dataset %q", name)
}

// paperScale holds the original |V| and |E| from Table I.
var paperScale = map[Dataset][2]int{
	WebBerkStan:    {685231, 7600595},
	WebGoogle:      {916428, 5105039},
	SocLiveJournal: {4847571, 68993773},
	Cage15:         {5154859, 99199551},
}

// PaperSize returns the original vertex and edge counts from Table I.
func (d Dataset) PaperSize() (v, e int) {
	s := paperScale[d]
	return s[0], s[1]
}

// Synthesize generates the analog of dataset d at the given scale: the
// vertex and edge counts are the paper's divided by scale (scale 1 =
// full paper size; the default harness uses scale ~10 so the whole
// experiment suite runs in minutes on a laptop). The result is
// deterministic in (d, scale, seed).
func Synthesize(d Dataset, scale int, seed uint64) (*graph.Graph, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("gen: scale must be positive (got %d)", scale)
	}
	pv, pe := d.PaperSize()
	n := pv / scale
	m := pe / scale
	if n < 16 {
		return nil, fmt.Errorf("gen: scale %d leaves only %d vertices for %s", scale, n, d)
	}
	switch d {
	case WebBerkStan:
		// web-BerkStan is the most skewed of the four (max in-degree
		// ~84K on 685K vertices); use a hot R-MAT parameterization.
		return RMAT(n, m, RMATParams{A: 0.65, B: 0.15, C: 0.15, D: 0.05, NoiseAmp: 0.1}, seed)
	case WebGoogle:
		return RMAT(n, m, DefaultRMAT, seed)
	case SocLiveJournal:
		// Social graph: preferential attachment with out-degree matching
		// the average (~14.2), which also yields high reciprocity-like
		// hub structure.
		k := (m + n - 1) / n
		if k < 1 {
			k = 1
		}
		return PreferentialAttachment(n, k, seed)
	case Cage15:
		// cage15 averages ~19.2 edges/vertex with banded locality.
		deg := (m + n - 1) / n
		if deg < 1 {
			deg = 1
		}
		bw := n / 64
		if bw < 4 {
			bw = 4
		}
		return Banded(n, deg, bw, seed)
	default:
		return nil, fmt.Errorf("gen: unknown dataset %v", d)
	}
}
