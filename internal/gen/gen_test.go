package gen

import (
	"testing"
	"testing/quick"

	"ndgraph/internal/graph"
)

type genResult struct {
	g   *graph.Graph
	err error
}

func r(g *graph.Graph, err error) genResult { return genResult{g, err} }

func validate(t *testing.T, res genResult) *graph.Graph {
	t.Helper()
	if res.err != nil {
		t.Fatal(res.err)
	}
	if err := res.g.Validate(); err != nil {
		t.Fatal(err)
	}
	return res.g
}

func TestRMATBasic(t *testing.T) {
	g := validate(t, r(RMAT(1000, 8000, DefaultRMAT, 42)))
	if g.N() != 1000 {
		t.Fatalf("N = %d", g.N())
	}
	// Dedup + self-loop drops lose some edges, but most should survive.
	if g.M() < 4000 || g.M() > 8000 {
		t.Fatalf("M = %d, want within (4000, 8000]", g.M())
	}
	st := g.ComputeStats()
	if st.SelfLoops != 0 {
		t.Fatalf("RMAT produced %d self-loops", st.SelfLoops)
	}
	// Heavy tail: the max degree should greatly exceed the average.
	if st.DegreeSkew < 3 {
		t.Fatalf("RMAT degree skew = %v, expected heavy tail", st.DegreeSkew)
	}
}

func TestRMATDeterminism(t *testing.T) {
	a := validate(t, r(RMAT(500, 3000, DefaultRMAT, 7)))
	b := validate(t, r(RMAT(500, 3000, DefaultRMAT, 7)))
	if a.M() != b.M() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.M(), b.M())
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("same seed, different edge %d", i)
		}
	}
	c := validate(t, r(RMAT(500, 3000, DefaultRMAT, 8)))
	ce := c.Edges()
	same := 0
	for i := 0; i < len(ae) && i < len(ce); i++ {
		if ae[i] == ce[i] {
			same++
		}
	}
	if same == len(ae) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRMATRejectsBadParams(t *testing.T) {
	if _, err := RMAT(0, 10, DefaultRMAT, 1); err == nil {
		t.Error("RMAT(0, ...) accepted")
	}
	if _, err := RMAT(10, -1, DefaultRMAT, 1); err == nil {
		t.Error("RMAT(m=-1) accepted")
	}
	if _, err := RMAT(10, 10, RMATParams{A: 0.9, B: 0.9}, 1); err == nil {
		t.Error("RMAT with probabilities summing to 1.8 accepted")
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g := validate(t, r(PreferentialAttachment(2000, 5, 3)))
	if g.N() != 2000 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() < 5000 {
		t.Fatalf("M = %d, too few edges", g.M())
	}
	st := g.ComputeStats()
	if st.MaxInDeg < 20 {
		t.Fatalf("MaxInDeg = %d, expected hubs", st.MaxInDeg)
	}
	if st.SelfLoops != 0 {
		t.Fatal("self-loops present")
	}
}

func TestPreferentialAttachmentRejectsBadParams(t *testing.T) {
	if _, err := PreferentialAttachment(0, 3, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := PreferentialAttachment(10, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestErdosRenyi(t *testing.T) {
	g := validate(t, r(ErdosRenyi(500, 3000, 9)))
	if g.N() != 500 {
		t.Fatalf("N = %d", g.N())
	}
	st := g.ComputeStats()
	if st.SelfLoops != 0 {
		t.Fatal("ER produced self-loops")
	}
	// ER should be low-skew.
	if st.DegreeSkew > 4 {
		t.Fatalf("ER skew = %v, too high", st.DegreeSkew)
	}
}

func TestBandedLocality(t *testing.T) {
	g := validate(t, r(Banded(1000, 10, 16, 5)))
	if g.N() != 1000 {
		t.Fatalf("N = %d", g.N())
	}
	// Every edge must stay within the band (mod ring wraparound).
	for _, e := range g.Edges() {
		d := int(e.Dst) - int(e.Src)
		if d < 0 {
			d = -d
		}
		wrap := g.N() - d
		if d > 16 && wrap > 16 {
			t.Fatalf("edge %v outside band", e)
		}
	}
	st := g.ComputeStats()
	if st.DegreeSkew > 2.5 {
		t.Fatalf("banded skew = %v, expected quasi-regular", st.DegreeSkew)
	}
}

func TestGrid(t *testing.T) {
	g := validate(t, r(Grid(4, 5, false, 0)))
	if g.N() != 20 {
		t.Fatalf("N = %d", g.N())
	}
	// 4x5 grid: horizontal 4*(5-1)=16, vertical (4-1)*5=15.
	if g.M() != 31 {
		t.Fatalf("M = %d, want 31", g.M())
	}
	b := validate(t, r(Grid(4, 5, true, 0)))
	if b.M() != 62 {
		t.Fatalf("bidirectional M = %d, want 62", b.M())
	}
}

func TestRingChainStarComplete(t *testing.T) {
	ring := validate(t, r(Ring(10)))
	if ring.M() != 10 {
		t.Fatalf("ring M = %d", ring.M())
	}
	for v := uint32(0); v < 10; v++ {
		if ring.OutDegree(v) != 1 || ring.InDegree(v) != 1 {
			t.Fatal("ring not 1-regular")
		}
	}
	chain := validate(t, r(Chain(10)))
	if chain.M() != 9 {
		t.Fatalf("chain M = %d", chain.M())
	}
	star := validate(t, r(Star(11)))
	if star.M() != 20 {
		t.Fatalf("star M = %d", star.M())
	}
	if star.Degree(0) != 20 {
		t.Fatalf("hub degree = %d", star.Degree(0))
	}
	comp := validate(t, r(Complete(6)))
	if comp.M() != 30 {
		t.Fatalf("complete M = %d", comp.M())
	}
}

func TestGeneratorEdgeCases(t *testing.T) {
	for name, f := range map[string]func() error{
		"Ring(0)":       func() error { _, err := Ring(0); return err },
		"Chain(0)":      func() error { _, err := Chain(0); return err },
		"Star(1)":       func() error { _, err := Star(1); return err },
		"Complete(0)":   func() error { _, err := Complete(0); return err },
		"Grid(0,3)":     func() error { _, err := Grid(0, 3, false, 0); return err },
		"Banded bw>=n":  func() error { _, err := Banded(10, 2, 10, 1); return err },
		"ErdosRenyi(1)": func() error { _, err := ErdosRenyi(1, 5, 1); return err },
	} {
		if f() == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestSynthesizeAllDatasets(t *testing.T) {
	for _, d := range AllDatasets() {
		g, err := Synthesize(d, 200, 1)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		pv, _ := d.PaperSize()
		wantN := pv / 200
		if g.N() != wantN {
			t.Errorf("%s: N = %d, want %d", d, g.N(), wantN)
		}
		st := g.ComputeStats()
		t.Logf("%s (scale 200): V=%d E=%d maxIn=%d maxOut=%d skew=%.1f",
			d, st.Vertices, st.Edges, st.MaxInDeg, st.MaxOutDeg, st.DegreeSkew)
	}
}

func TestSynthesizeStructuralClasses(t *testing.T) {
	// Web/social analogs must be skewed, cage analog quasi-regular.
	web, err := Synthesize(WebBerkStan, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	cage, err := Synthesize(Cage15, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	ws, cs := web.ComputeStats(), cage.ComputeStats()
	if ws.DegreeSkew < 2*cs.DegreeSkew {
		t.Fatalf("web skew %.1f not clearly above cage skew %.1f", ws.DegreeSkew, cs.DegreeSkew)
	}
}

func TestSynthesizeDeterminism(t *testing.T) {
	a, err := Synthesize(WebGoogle, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(WebGoogle, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() || a.N() != b.N() {
		t.Fatal("Synthesize not deterministic")
	}
}

func TestSynthesizeErrors(t *testing.T) {
	if _, err := Synthesize(WebGoogle, 0, 1); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := Synthesize(WebGoogle, 1<<30, 1); err == nil {
		t.Error("absurd scale accepted")
	}
}

func TestParseDataset(t *testing.T) {
	for _, d := range AllDatasets() {
		got, err := ParseDataset(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDataset(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ParseDataset("nope"); err == nil {
		t.Error("ParseDataset accepted unknown name")
	}
	if Dataset(99).String() == "" {
		t.Error("unknown dataset String is empty")
	}
}

func TestRMATQuickValid(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := RMAT(128, 512, DefaultRMAT, seed)
		if err != nil {
			return false
		}
		return g.Validate() == nil && g.N() == 128
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRMAT100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RMAT(16384, 100000, DefaultRMAT, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
