package analysis

// admitcheck guards the engine admission gates themselves. Two tiers
// admit algorithms on declared facts: async.NoSync (barrier-free
// execution, Theorem 1/2 required) and the ε-aware stopping rule
// (Theorem 1, approximate convergence, plus a ResidualDelta metric the
// windowed estimator trusts). The pass re-derives the theorem class from
// first principles — the paper's two sufficient conditions applied to
// the static access profile and the extracted Properties — and
// cross-checks the result against the *live* library gates
// (eligibility.AdviseStatic → Verdict.NoSync/EpsilonStop); any
// disagreement is a drift tripwire diagnostic, catching edits to the
// eligibility logic that silently change which algorithms the engines
// accept. For ε-admissible algorithms it additionally requires a
// ResidualDelta method and, when the method's body compiles, verifies
// the metric laws the estimator assumes: non-negative everywhere and
// zero exactly on unchanged values.

import (
	"fmt"
	"go/ast"
	"go/types"

	"ndgraph/internal/eligibility"
)

// AdmitCheck is the admission-gate verification pass.
var AdmitCheck = &Analyzer{
	Name: "admitcheck",
	Doc: "re-derive Theorem 1/2 admission from the static profile and " +
		"declared Properties, cross-check against the live NoSync/ε-stop " +
		"gates, and verify ResidualDelta metric laws for ε-admissible " +
		"algorithms",
	Run: runAdmitCheck,
}

// AdmitReport is admitcheck's per-algorithm result — the admission slice
// of the eligibility certificate.
type AdmitReport struct {
	Name string
	Recv string
	// Profile is the static access profile the derivation used.
	Profile eligibility.StaticProfile
	// Props is the extracted declaration (nil ⇒ no report facts below).
	Props *eligibility.Properties
	// Theorem is the independently re-derived class (0 = not eligible).
	Theorem int
	// DeterministicResults, NoSyncOK, EpsilonStopOK are the re-derived
	// gate outcomes, cross-checked against the library.
	DeterministicResults bool
	NoSyncOK             bool
	EpsilonStopOK        bool
	// ResidualDelta coverage: declared, compiled, and law-clean.
	HasResidualDelta     bool
	ResidualDeltaChecked bool
	ResidualDeltaOK      bool
	// Counter carries the first ResidualDelta law violation.
	Counter string
	// Hash matches propcheck's source identity for the same update.
	Hash string
}

func runAdmitCheck(pass *Pass) (any, error) {
	ev := newEvaluator(pass)
	c := &classifier{
		pass:  pass,
		decls: indexFuncDecls(pass),
		memo:  map[*ast.FuncDecl]eligibility.StaticProfile{},
		busy:  map[*ast.FuncDecl]bool{},
	}
	var reports []AdmitReport
	for _, u := range FindUpdateFuncs(pass) {
		if u.Recv == nil {
			continue
		}
		props, ok := extractProperties(pass, u.Recv)
		if !ok {
			continue // conflictclass already reports unreadable Properties
		}
		r := AdmitReport{
			Name:    u.Name,
			Recv:    u.Recv.Obj().Name(),
			Profile: c.profileOfBody(u.Body),
			Props:   &props,
			Hash:    updateHash(pass, u),
		}
		deriveAdmission(&r)
		crossCheckGates(pass, u, r)
		checkResidualDelta(ev, pass, u, &r)
		reports = append(reports, r)
	}
	return reports, nil
}

// deriveAdmission applies the paper's sufficient conditions directly —
// an implementation independent of eligibility.Advise, so the two can
// disagree only if one of them drifted.
func deriveAdmission(r *AdmitReport) {
	p := *r.Props
	ww := r.Profile.PotentialWW()
	rw := r.Profile.PotentialRW()
	switch {
	case !ww && !rw:
		// No edge conflicts are possible: concurrent updates never
		// compete, nondeterministic execution is trivially covered.
		r.Theorem = 1
	case ww:
		// Write-write conflicts corrupt values; only Theorem 2's
		// monotone-recovery argument admits them.
		if p.ConvergesDetAsync && p.Monotonic {
			r.Theorem = 2
		}
	default:
		// Read-write only: Theorem 1 needs a convergence chain under
		// some deterministic schedule.
		if p.ConvergesSynchronously || p.ConvergesDetAsync {
			r.Theorem = 1
		}
	}
	r.DeterministicResults = r.Theorem != 0 && p.Monotonic && p.Convergence == eligibility.Absolute
	r.NoSyncOK = r.Theorem == 1 || r.Theorem == 2
	r.EpsilonStopOK = r.Theorem == 1 && !r.DeterministicResults
}

// crossCheckGates compares the re-derived admission with what the
// library actually answers today.
func crossCheckGates(pass *Pass, u UpdateFn, r AdmitReport) {
	v := eligibility.AdviseStatic(*r.Props, r.Profile)
	libNoSync := v.NoSync() == nil
	libEps := v.EpsilonStop() == nil
	if v.Theorem != r.Theorem || libNoSync != r.NoSyncOK || libEps != r.EpsilonStopOK ||
		v.DeterministicResults != r.DeterministicResults {
		pass.Reportf(u.Pos().Pos(),
			"admission gate drift for %s: paper-derived (theorem=%d nosync=%v εstop=%v det=%v) disagrees with eligibility library (theorem=%d nosync=%v εstop=%v det=%v) — the Advise/NoSync/EpsilonStop logic no longer matches the paper's sufficient conditions",
			u.Name, r.Theorem, r.NoSyncOK, r.EpsilonStopOK, r.DeterministicResults,
			v.Theorem, libNoSync, libEps, v.DeterministicResults)
	}
}

// checkResidualDelta requires the metric for ε-admissible algorithms and
// verifies its laws when the body is in the evaluator's fragment.
func checkResidualDelta(ev *evaluator, pass *Pass, u UpdateFn, r *AdmitReport) {
	decl := findMethodDecl(pass, u.Recv, "ResidualDelta")
	if decl == nil {
		if r.EpsilonStopOK {
			pass.Reportf(u.Pos().Pos(),
				"%s is ε-stop admissible (Theorem 1, approximate convergence) but %s declares no ResidualDelta(old, new uint64) float64 — the ε-aware stopping rule has no residual metric to window",
				u.Name, r.Recv)
		}
		return
	}
	r.HasResidualDelta = true
	if !residualDeltaShape(pass, decl) {
		pass.Reportf(decl.Pos(),
			"%s.ResidualDelta must have signature func(old, new uint64) float64 to serve as the ε-stop residual metric", r.Recv)
		return
	}
	params := declParams(pass, decl)
	c, err := ev.compileFunc(params, decl.Body, decl)
	if err != nil {
		return // outside the fragment: unverified, recorded in the cert
	}
	r.ResidualDeltaChecked = true
	r.ResidualDeltaOK = true
	words := wordDomain()
	for _, fr := range freeAssignments(c.frees) {
		rd := func(old, new uint64) (float64, bool) {
			v, err := c.fn([]val{vUint(old, 64), vUint(new, 64)}, fr)
			if err != nil || v.k != kindFloat || v.isNaN() {
				return 0, false
			}
			return v.f, true
		}
		for _, w := range words {
			// Zero on unchanged values: RD(w, w) == 0.
			if d, ok := rd(w, w); ok && d != 0 && r.ResidualDeltaOK {
				r.ResidualDeltaOK = false
				r.Counter = fmt.Sprintf("ResidualDelta(%#x, %#x) = %g, want 0 for an unchanged value", w, w, d)
			}
			for _, w2 := range words {
				d, ok := rd(w, w2)
				if !ok {
					continue
				}
				// Non-negative everywhere.
				if d < 0 && r.ResidualDeltaOK {
					r.ResidualDeltaOK = false
					r.Counter = fmt.Sprintf("ResidualDelta(%#x, %#x) = %g < 0", w, w2, d)
				}
				// Zero only on unchanged values (modulo float-equal
				// payloads like 0 vs −0).
				if d == 0 && w != w2 && !floatEquivalent(w, w2) && r.ResidualDeltaOK {
					r.ResidualDeltaOK = false
					r.Counter = fmt.Sprintf("ResidualDelta(%#x, %#x) = 0 but the values differ — the windowed residual would report convergence on a still-moving run", w, w2)
				}
			}
		}
	}
	if !r.ResidualDeltaOK {
		pass.reportCounter(decl.Pos(), r.Counter,
			"%s.ResidualDelta violates the residual metric laws: %s", r.Recv, r.Counter)
	}
}

// residualDeltaShape checks the func(uint64, uint64) float64 method shape.
func residualDeltaShape(pass *Pass, decl *ast.FuncDecl) bool {
	obj := pass.Info.Defs[decl.Name]
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sigShape(sig, []types.BasicKind{types.Uint64, types.Uint64}, types.Float64)
}

// declParams collects a declaration's parameter objects in slot order.
func declParams(pass *Pass, decl *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				out = append(out, nil)
				continue
			}
			out = append(out, pass.Info.Defs[name])
		}
	}
	return out
}
