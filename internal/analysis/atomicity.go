package analysis

import (
	"go/ast"
	"go/types"
)

// Atomicity flags packed sub-word read-modify-writes of edge data: a
// Set{In,Out}EdgeVal whose new value is derived from the update's own
// prior read of the same edge word (e.g. preserving one packed 32-bit half
// while rewriting the other). The logical payload of such an encoding is
// wider than the 64-bit unit the store transfers atomically, so the
// Section III realizations (b) aligned transfer and (c) atomic primitives
// guarantee only that each individual load/store is untorn — the compound
// read-modify-write is NOT atomic and a concurrent endpoint update can be
// lost. Such encodings need realization (a), ModeLocked, held across the
// whole read-modify-write, or an explicit recovery argument in the spirit
// of Theorem 2 (kcore's republish-on-schedule is the in-tree example).
var Atomicity = &Analyzer{
	Name: "atomicity",
	Doc: "flag packed sub-word read-modify-writes of edge words, which " +
		"per-word atomicity (Section III (b)/(c)) cannot protect",
	Run: runAtomicity,
}

func runAtomicity(pass *Pass) (any, error) {
	for _, u := range FindUpdateFuncs(pass) {
		checkAtomicity(pass, u)
	}
	return nil, nil
}

// edgeRead records that a local variable holds the value of a specific
// edge word: direction ("In"/"Out") plus the identity of the index
// expression (the index variable's object, or a rendered constant).
type edgeRead struct {
	dir      string
	indexObj types.Object
	indexStr string
}

func checkAtomicity(pass *Pass, u UpdateFn) {
	reads := map[types.Object]edgeRead{}

	indexKey := func(idx ast.Expr) (types.Object, string) {
		if id, ok := idx.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				return obj, ""
			}
		}
		if tv, ok := pass.Info.Types[idx]; ok && tv.Value != nil {
			return nil, tv.Value.ExactString()
		}
		return nil, ""
	}
	sameWord := func(a, b edgeRead) bool {
		if a.dir != b.dir {
			return false
		}
		if a.indexObj != nil || b.indexObj != nil {
			return a.indexObj == b.indexObj
		}
		return a.indexStr != "" && a.indexStr == b.indexStr
	}
	asEdgeRead := func(e ast.Expr) (edgeRead, bool) {
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return edgeRead{}, false
		}
		name, ok := viewCall(pass, call)
		if !ok || (name != "InEdgeVal" && name != "OutEdgeVal") {
			return edgeRead{}, false
		}
		obj, str := indexKey(call.Args[0])
		return edgeRead{dir: name[:len(name)-len("EdgeVal")], indexObj: obj, indexStr: str}, true
	}

	ast.Inspect(u.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			// Track w := view.InEdgeVal(k) (and plain re-assignments).
			if len(s.Lhs) == len(s.Rhs) {
				for i, rhs := range s.Rhs {
					if r, ok := asEdgeRead(rhs); ok {
						if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
							obj := pass.Info.Defs[id]
							if obj == nil {
								obj = pass.Info.Uses[id]
							}
							if obj != nil {
								reads[obj] = r
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			name, ok := viewCall(pass, s)
			if !ok || (name != "SetInEdgeVal" && name != "SetOutEdgeVal") || len(s.Args) != 2 {
				return true
			}
			dir := name[len("Set") : len(name)-len("EdgeVal")]
			obj, str := indexKey(s.Args[0])
			target := edgeRead{dir: dir, indexObj: obj, indexStr: str}
			// Does the written value derive from a read of the same word?
			derived := false
			ast.Inspect(s.Args[1], func(v ast.Node) bool {
				if derived {
					return false
				}
				switch e := v.(type) {
				case *ast.Ident:
					if r, ok := reads[pass.Info.Uses[e]]; ok && sameWord(r, target) {
						derived = true
					}
				case *ast.CallExpr:
					if r, ok := asEdgeRead(e); ok && sameWord(r, target) {
						derived = true
					}
				}
				return true
			})
			if derived {
				pass.Reportf(s.Pos(),
					"%s rewrites edge word %sEdgeVal(...) from its own prior read (packed sub-word payload): the logical payload is wider than the one 64-bit word the store transfers atomically, so Section III realizations (b)/(c) cannot make the read-modify-write atomic — hold ModeLocked across the compound update or justify recovery à la Theorem 2",
					u.Name, dir)
			}
		}
		return true
	})
}
