// Package analysis answers the paper's title question — "is your graph
// algorithm eligible for nondeterministic execution?" — statically, by
// inspecting the source of update functions instead of probing a run.
// Four passes check the premises the paper's Theorems 1 and 2 rest on:
//
//   - scopecheck: the Section II scope rule — an update function touches
//     only its vertex and incident edges through the VertexView, never
//     captured variables, package state, or its (shared) receiver, and
//     never synchronizes on its own (go/chan/sync/atomic);
//   - conflictclass: the static conflict class (RO / RW / WW) of the
//     update's edge accesses, fed to eligibility.AdviseStatic together
//     with the statically extracted Properties — ineligible combinations
//     become diagnostics;
//   - determinism: sources of run-to-run nondeterminism *inside* the
//     update function (wall clocks, math/rand, map iteration order) that
//     break record/replay and the cross-engine differential suite;
//   - atomicity: packed sub-word read-modify-writes of edge words, which
//     the per-word atomicity realizations of Section III cannot protect.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is built on the standard library only,
// so the repository stays dependency-free. cmd/ndlint drives the passes
// either standalone or as a `go vet -vettool` backend.
//
// Suppression: a diagnostic is silenced by a pragma comment
//
//	//ndlint:ignore <pass> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory — a pragma without one does not suppress and is itself
// reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the pass in diagnostics and pragmas.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Run executes the pass and may return a pass-specific result (e.g.
	// conflictclass returns the static profiles it derived).
	Run func(*Pass) (any, error)
}

// A Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Category: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// reportCounter records a diagnostic that carries a machine-readable
// counter-example (the semantic passes' concrete refutation), surfaced
// separately by cmd/ndlint -json.
func (p *Pass) reportCounter(pos token.Pos, counter, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Category: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Counter:  counter,
	})
}

// A Diagnostic is one finding, with its resolved source position.
type Diagnostic struct {
	Pos      token.Position
	Category string
	Message  string
	// Counter is the concrete counter-example backing a semantic finding
	// (propcheck/kernelcheck/admitcheck); empty for syntactic passes.
	Counter string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Category, d.Message)
}

// Package is a loaded, type-checked package — the input to RunAnalyzers.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with all maps the passes need populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Default returns the ndlint passes in reporting order: the four
// syntactic passes of PR 5, then the three semantic-verification passes
// (propcheck/kernelcheck/admitcheck) built on the eval.go interpreter.
func Default() []*Analyzer {
	return []*Analyzer{ScopeCheck, ConflictClass, Determinism, Atomicity,
		PropCheck, KernelCheck, AdmitCheck}
}

// ByName resolves an analyzer name; it returns nil if unknown.
func ByName(name string) *Analyzer {
	for _, a := range Default() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzers runs the given passes over pkg, filters pragma-suppressed
// findings, and returns the surviving diagnostics (sorted by position)
// together with each pass's result keyed by analyzer name.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, map[string]any, error) {
	var diags []Diagnostic
	results := make(map[string]any, len(analyzers))
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		res, err := a.Run(pass)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
		results[a.Name] = res
	}
	diags = filterPragmas(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, results, nil
}

// pragma is one parsed //ndlint:ignore directive.
type pragma struct {
	pass   string // analyzer name or "all"
	reason string
	pos    token.Position
}

const pragmaPrefix = "//ndlint:ignore"

// parsePragmas collects the ndlint directives of every file, keyed by
// filename and line. Malformed directives (no reason) are returned
// separately so the caller can report them.
func parsePragmas(pkg *Package) (map[string]map[int][]pragma, []Diagnostic) {
	byLine := make(map[string]map[int][]pragma)
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, pragmaPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, pragmaPrefix))
				pass, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if pass == "" || reason == "" {
					malformed = append(malformed, Diagnostic{
						Pos:      pos,
						Category: "pragma",
						Message:  "malformed ndlint pragma: want //ndlint:ignore <pass> <reason> — the reason is mandatory",
					})
					continue
				}
				m := byLine[pos.Filename]
				if m == nil {
					m = make(map[int][]pragma)
					byLine[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], pragma{pass: pass, reason: reason, pos: pos})
			}
		}
	}
	return byLine, malformed
}

// filterPragmas removes diagnostics suppressed by a well-formed pragma on
// the same line or the line directly above, and appends diagnostics for
// malformed pragmas.
func filterPragmas(pkg *Package, diags []Diagnostic) []Diagnostic {
	pragmas, malformed := parsePragmas(pkg)
	var kept []Diagnostic
	for _, d := range diags {
		if pragmaCovers(pragmas, d) {
			continue
		}
		kept = append(kept, d)
	}
	return append(kept, malformed...)
}

func pragmaCovers(pragmas map[string]map[int][]pragma, d Diagnostic) bool {
	m := pragmas[d.Pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, p := range m[line] {
			if p.pass == d.Category || p.pass == "all" {
				return true
			}
		}
	}
	return false
}
