package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// This file is the repository's analysistest analog: golden fixture
// packages live under testdata/src/<pkg>/, annotated with
//
//	expr // want "regexp" "another regexp"
//
// comments naming the diagnostics the analyzer must produce on that line.
// Fixture packages import each other by bare path (e.g. "core" resolves to
// testdata/src/core); standard-library imports are resolved through export
// data from `go list -export`.

// RunFixture runs analyzer over each fixture package and asserts that its
// (pragma-filtered) diagnostics match the // want annotations exactly. It
// returns the analyzer's result per fixture directory, so tests can also
// assert on pass results (e.g. conflictclass profiles).
func RunFixture(t *testing.T, analyzer *Analyzer, dirs ...string) map[string]any {
	t.Helper()
	root := filepath.Join("testdata", "src")
	loader := newFixtureLoader(t, root)
	results := make(map[string]any, len(dirs))
	for _, dir := range dirs {
		pkg := loader.load(dir)
		diags, res, err := RunAnalyzers(pkg, []*Analyzer{analyzer})
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		results[dir] = res[analyzer.Name]
		checkExpectations(t, dir, pkg, diags)
	}
	return results
}

// fixtureLoader type-checks fixture packages, resolving fixture-local
// imports from source and everything else from stdlib export data.
type fixtureLoader struct {
	t    *testing.T
	root string
	fset *token.FileSet
	memo map[string]*types.Package
	std  types.Importer
}

func newFixtureLoader(t *testing.T, root string) *fixtureLoader {
	t.Helper()
	fset := token.NewFileSet()
	exports, err := StdExports(stdImportsOf(t, root)...)
	if err != nil {
		t.Fatalf("resolving stdlib exports: %v", err)
	}
	std := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	})
	return &fixtureLoader{t: t, root: root, fset: fset, memo: map[string]*types.Package{}, std: std}
}

// stdImportsOf collects every import across the corpus that does not
// resolve to a fixture directory — those must come from the standard
// library.
func stdImportsOf(t *testing.T, root string) []string {
	t.Helper()
	seen := map[string]bool{}
	var std []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if seen[p] {
				continue
			}
			seen[p] = true
			if _, err := os.Stat(filepath.Join(root, p)); err != nil {
				std = append(std, p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning fixture imports: %v", err)
	}
	return std
}

func (l *fixtureLoader) load(dir string) *Package {
	l.t.Helper()
	full := filepath.Join(l.root, dir)
	entries, err := os.ReadDir(full)
	if err != nil {
		l.t.Fatalf("fixture %s: %v", dir, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(full, e.Name()), nil, parser.ParseComments)
		if err != nil {
			l.t.Fatalf("fixture %s: %v", dir, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.t.Fatalf("fixture %s: no Go files", dir)
	}
	info := NewInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(dir, l.fset, files, info)
	if err != nil {
		l.t.Fatalf("fixture %s: typecheck: %v", dir, err)
	}
	l.memo[dir] = tpkg
	return &Package{Path: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
}

// Import implements types.Importer: fixture directories from source,
// everything else from stdlib export data.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.memo[path]; ok {
		return pkg, nil
	}
	if _, err := os.Stat(filepath.Join(l.root, path)); err == nil {
		return l.load(path).Types, nil
	}
	return l.std.Import(path)
}

// wantRx extracts the quoted regexps of a // want comment.
var wantRx = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

func collectExpectations(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var exps []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRx.FindAllString(strings.TrimPrefix(text, "want "), -1) {
					pattern := strings.Trim(q, "`")
					if strings.HasPrefix(q, "\"") {
						var err error
						pattern, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
						}
					}
					rx, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					exps = append(exps, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return exps
}

func checkExpectations(t *testing.T, dir string, pkg *Package, diags []Diagnostic) {
	t.Helper()
	exps := collectExpectations(t, pkg)
	for _, d := range diags {
		found := false
		for _, e := range exps {
			if e.file == d.Pos.Filename && e.line == d.Pos.Line && e.rx.MatchString(d.Message) {
				e.matched = true
				found = true
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", dir, d)
		}
	}
	for _, e := range exps {
		if !e.matched {
			t.Errorf("%s: %s:%d: no diagnostic matched want %q", dir, e.file, e.line, e.rx)
		}
	}
}
