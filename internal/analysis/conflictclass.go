package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"ndgraph/internal/eligibility"
)

// ConflictClass derives each update function's *static* conflict profile —
// which sides of an edge it can read and write — and, when the algorithm's
// Properties() method is statically readable, feeds the worst-case profile
// to eligibility.AdviseStatic. The classification mirrors the paper's
// system model: edge (u→v) is touched by f(u) through Out* calls and by
// f(v) through In* calls, so the call set alone bounds the conflict class
// over all graphs and schedules (cf. the a-priori access-pattern
// classification of the non-blocking PageRank and delayed-async lines of
// work). An ineligible worst case is a diagnostic; an eligible one is
// silent.
var ConflictClass = &Analyzer{
	Name: "conflictclass",
	Doc: "classify update functions' edge accesses into static conflict " +
		"profiles (RO/RW/WW) and check them against the paper's theorems",
	Run: runConflictClass,
}

// ClassReport is one update function's static classification — the pass
// result is []ClassReport, consumed by the static/runtime consistency test
// and by cmd/ndlint's verbose output.
type ClassReport struct {
	// Name is the update function's display name; Recv the receiver type
	// name for methods ("" otherwise).
	Name string
	Recv string
	// Profile is the statically derived access profile.
	Profile eligibility.StaticProfile
	// Props holds the statically extracted Properties when the receiver
	// declares a Properties() method built from constants; nil otherwise.
	Props *eligibility.Properties
	// Verdict is eligibility.AdviseStatic(Props, Profile) when Props is
	// available.
	Verdict *eligibility.Verdict
}

func runConflictClass(pass *Pass) (any, error) {
	c := &classifier{
		pass:  pass,
		decls: indexFuncDecls(pass),
		memo:  map[*ast.FuncDecl]eligibility.StaticProfile{},
		busy:  map[*ast.FuncDecl]bool{},
	}
	var reports []ClassReport
	for _, u := range FindUpdateFuncs(pass) {
		r := ClassReport{Name: u.Name, Profile: c.profileOfBody(u.Body)}
		if u.Recv != nil {
			r.Recv = u.Recv.Obj().Name()
			if props, ok := extractProperties(pass, u.Recv); ok {
				r.Props = &props
				v := eligibility.AdviseStatic(props, r.Profile)
				r.Verdict = &v
			}
		}
		reports = append(reports, r)

		switch {
		case r.Verdict != nil && !r.Verdict.Eligible:
			pass.Reportf(u.Pos().Pos(),
				"%s is statically NOT ELIGIBLE for nondeterministic execution: profile %s with premises (sync=%v det-async=%v monotonic=%v convergence=%s) — %s",
				u.Name, r.Profile, r.Props.ConvergesSynchronously, r.Props.ConvergesDetAsync,
				r.Props.Monotonic, r.Props.Convergence, strings.Join(r.Verdict.Reasons[1:], "; "))
		case r.Verdict == nil && r.Profile.PotentialWW():
			pass.Reportf(u.Pos().Pos(),
				"%s has static conflict class %s (both endpoints write shared edge words) but no statically readable Properties(): the Theorem 2 premises (monotonicity, det-async convergence) cannot be checked — declare Properties with constant fields",
				u.Name, r.Profile.Class())
		}
	}
	return reports, nil
}

// classifier computes access profiles, following calls that pass a
// VertexView to another function in the same package (one static
// call-graph hop at a time, to a fixpoint, cycles broken by `busy`).
type classifier struct {
	pass  *Pass
	decls map[types.Object]*ast.FuncDecl
	memo  map[*ast.FuncDecl]eligibility.StaticProfile
	busy  map[*ast.FuncDecl]bool
}

func (c *classifier) profileOfBody(body *ast.BlockStmt) eligibility.StaticProfile {
	var sp eligibility.StaticProfile
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := viewCall(c.pass, call); ok {
			switch name {
			case "InEdgeVal":
				sp.ReadsIn = true
			case "OutEdgeVal":
				sp.ReadsOut = true
			case "SetInEdgeVal":
				sp.WritesIn = true
			case "SetOutEdgeVal":
				sp.WritesOut = true
			case "SetVertex":
				sp.WritesVertex = true
			}
			return true
		}
		// A call that hands the view to another function inherits that
		// function's accesses (same-package callees only — we have no
		// bodies for the rest).
		for _, arg := range call.Args {
			if t := c.pass.Info.TypeOf(arg); t != nil && IsVertexView(t) {
				if decl := c.calleeDecl(call); decl != nil {
					sp = mergeProfiles(sp, c.profileOfDecl(decl))
				}
				break
			}
		}
		return true
	})
	return sp
}

func (c *classifier) profileOfDecl(decl *ast.FuncDecl) eligibility.StaticProfile {
	if sp, ok := c.memo[decl]; ok {
		return sp
	}
	if c.busy[decl] || decl.Body == nil {
		return eligibility.StaticProfile{}
	}
	c.busy[decl] = true
	sp := c.profileOfBody(decl.Body)
	c.busy[decl] = false
	c.memo[decl] = sp
	return sp
}

func (c *classifier) calleeDecl(call *ast.CallExpr) *ast.FuncDecl {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = c.pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = c.pass.Info.Uses[fun.Sel]
	}
	if obj == nil {
		return nil
	}
	return c.decls[obj]
}

// indexFuncDecls maps function objects to their declarations (non-test
// files only).
func indexFuncDecls(pass *Pass) map[types.Object]*ast.FuncDecl {
	idx := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					idx[obj] = fd
				}
			}
		}
	}
	return idx
}

func mergeProfiles(a, b eligibility.StaticProfile) eligibility.StaticProfile {
	return eligibility.StaticProfile{
		ReadsIn:      a.ReadsIn || b.ReadsIn,
		ReadsOut:     a.ReadsOut || b.ReadsOut,
		WritesIn:     a.WritesIn || b.WritesIn,
		WritesOut:    a.WritesOut || b.WritesOut,
		WritesVertex: a.WritesVertex || b.WritesVertex,
	}
}

// extractProperties reads the receiver type's Properties() method and
// rebuilds the eligibility.Properties it returns, provided the method
// returns a composite literal whose premise fields are compile-time
// constants (which all built-in algorithms satisfy; a Name built at
// runtime, like SSSP's, is simply left empty). The extraction is keyed on
// field *names*, so it works identically on the real
// eligibility.Properties and on fixture replicas.
func extractProperties(pass *Pass, recv *types.Named) (eligibility.Properties, bool) {
	decl := findMethodDecl(pass, recv, "Properties")
	if decl == nil || decl.Body == nil {
		return eligibility.Properties{}, false
	}
	var lit *ast.CompositeLit
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if lit != nil {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		expr := ret.Results[0]
		if un, ok := expr.(*ast.UnaryExpr); ok {
			expr = un.X
		}
		if cl, ok := expr.(*ast.CompositeLit); ok {
			lit = cl
		}
		return true
	})
	if lit == nil {
		return eligibility.Properties{}, false
	}
	var props eligibility.Properties
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		val := pass.Info.Types[kv.Value].Value
		switch key.Name {
		case "ConvergesSynchronously", "ConvergesDetAsync", "Monotonic":
			if val == nil || val.Kind() != constant.Bool {
				return eligibility.Properties{}, false
			}
			b := constant.BoolVal(val)
			switch key.Name {
			case "ConvergesSynchronously":
				props.ConvergesSynchronously = b
			case "ConvergesDetAsync":
				props.ConvergesDetAsync = b
			case "Monotonic":
				props.Monotonic = b
			}
		case "Convergence":
			if val == nil || val.Kind() != constant.Int {
				return eligibility.Properties{}, false
			}
			n, _ := constant.Int64Val(val)
			props.Convergence = eligibility.Condition(n)
		case "Name":
			if val != nil && val.Kind() == constant.String {
				props.Name = constant.StringVal(val)
			}
		}
	}
	return props, true
}

// findMethodDecl locates a method declaration by name on the given
// receiver base type (non-test files).
func findMethodDecl(pass *Pass, recv *types.Named, name string) *ast.FuncDecl {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			if named := namedRecvType(pass, fd.Recv.List[0].Type); named != nil && named.Obj() == recv.Obj() {
				return fd
			}
		}
	}
	return nil
}
