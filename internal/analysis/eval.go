package analysis

// eval.go is the semantic-verification evaluator behind propcheck,
// kernelcheck, and admitcheck: it compiles a typed Go expression — an
// update function's merge, a kernel's Message/Better pair, a
// ResidualDelta metric — into a tree of closures (the interpreted IR)
// that the passes then drive bounded-exhaustively over enumerated word
// values. Compilation either succeeds for the *whole* expression or
// fails; there is no partial interpretation, so every law a pass reports
// as checked was evaluated under real Go semantics (wrapping uint64
// arithmetic, IEEE-754 float64, short-circuit booleans).
//
// The supported fragment is deliberately small — pure arithmetic,
// comparisons, boolean logic, conversions between basic types, a handful
// of math/edgedata intrinsics, and same-package pure function inlining.
// Anything outside it (slices, maps, method calls, mutation) is a
// compile error, which the passes surface as "unverified", never as a
// false diagnostic. Captured state an expression reads but the evaluator
// cannot resolve — receiver fields like s.Epsilon, indexed captured
// slices like weights[e] — becomes a *free symbol* enumerated over a
// small per-kind domain, so the checked laws are required to hold for
// every value the capture could take.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"hash/fnv"
	"math"
	"strings"
)

// valKind discriminates the evaluator's value universe.
type valKind uint8

const (
	kindInvalid valKind = iota
	kindUint            // unsigned integers of any width (bits field)
	kindInt             // signed integers of any width
	kindFloat           // float64
	kindBool
)

// val is one runtime value of the interpreted IR.
type val struct {
	k    valKind
	bits uint8 // integer width (8/16/32/64); 0 for float/bool
	u    uint64
	i    int64
	f    float64
	b    bool
}

func vUint(u uint64, bits uint8) val { return val{k: kindUint, bits: bits, u: u & maskOf(bits)} }
func vInt(i int64, bits uint8) val   { return val{k: kindInt, bits: bits, i: truncInt(i, bits)} }
func vFloat(f float64) val           { return val{k: kindFloat, f: f} }
func vBool(b bool) val               { return val{k: kindBool, b: b} }

func maskOf(bits uint8) uint64 {
	if bits == 0 || bits >= 64 {
		return ^uint64(0)
	}
	return (1 << bits) - 1
}

func truncInt(i int64, bits uint8) int64 {
	if bits == 0 || bits >= 64 {
		return i
	}
	shift := 64 - bits
	return i << shift >> shift
}

// eq reports value equality within one kind. Float compares with ==, so
// NaN never equals anything (the law drivers skip NaN tuples explicitly)
// and +0 equals -0 — both deliberate: they mirror what the engines'
// comparison code would observe.
func (a val) eq(b val) bool {
	if a.k != b.k {
		return false
	}
	switch a.k {
	case kindUint:
		return a.u == b.u
	case kindInt:
		return a.i == b.i
	case kindFloat:
		return a.f == b.f
	case kindBool:
		return a.b == b.b
	}
	return false
}

// isNaN reports a float NaN — the one value family the law drivers
// excuse, because no kernel's value contract admits NaN payloads (the
// enumeration domain still contains NaN *bit patterns* like MaxUint64,
// which matter for integer-kind merges).
func (a val) isNaN() bool { return a.k == kindFloat && math.IsNaN(a.f) }

// String renders a value for counter-example diagnostics: hex word plus
// a decoded form, so "0x7ff0000000000000 (float +Inf)" reads at a glance.
func (a val) String() string {
	switch a.k {
	case kindUint:
		return fmt.Sprintf("%#x (%d)", a.u, a.u)
	case kindInt:
		return fmt.Sprintf("%d", a.i)
	case kindFloat:
		return fmt.Sprintf("%#x (float %g)", math.Float64bits(a.f), a.f)
	case kindBool:
		return fmt.Sprintf("%t", a.b)
	}
	return "<invalid>"
}

// evalFn is one compiled expression: args are the bound parameters (in
// slot order), frees the current assignment to the free symbols.
type evalFn func(args, frees []val) (val, error)

// freeSym is one unresolved capture the compiled expression reads.
type freeSym struct {
	// key is the capture's source rendering ("s.Epsilon", "weights[e]") —
	// two syntactic occurrences of the same rendering share one symbol.
	key string
	// kind/bits type the enumeration domain.
	kind valKind
	bits uint8
}

// compiled pairs a closure with the free symbols it discovered.
type compiled struct {
	fn    evalFn
	frees []freeSym
}

// maxFreeSyms caps the capture count: each free symbol multiplies the
// enumeration space by its domain size, so past two the bounded-
// exhaustive sweep stops being cheap and the pass reports "unverified"
// instead.
const maxFreeSyms = 2

// freeDomain returns the enumeration values for one free symbol.
func freeDomain(s freeSym) []val {
	switch s.kind {
	case kindFloat:
		return []val{vFloat(0), vFloat(0.5), vFloat(1), vFloat(2.5)}
	case kindUint:
		return []val{vUint(0, s.bits), vUint(1, s.bits), vUint(7, s.bits), vUint(100, s.bits)}
	case kindInt:
		return []val{vInt(0, s.bits), vInt(1, s.bits), vInt(3, s.bits)}
	case kindBool:
		return []val{vBool(false), vBool(true)}
	}
	return nil
}

// freeAssignments enumerates the cartesian product of all free-symbol
// domains; a law must hold under every assignment.
func freeAssignments(frees []freeSym) [][]val {
	out := [][]val{nil}
	for _, s := range frees {
		dom := freeDomain(s)
		var next [][]val
		for _, prefix := range out {
			for _, v := range dom {
				row := make([]val, len(prefix)+1)
				copy(row, prefix)
				row[len(prefix)] = v
				next = append(next, row)
			}
		}
		out = next
	}
	return out
}

// wordDomain is the bounded-exhaustive enumeration universe: systematic
// small integers, power-of-two boundaries, MaxUint64, and the bit
// patterns of characteristic float64 values including ±Inf, ±0, a
// denormal, and extreme magnitudes. ~23 words keep a triple-nested law
// sweep around 12k evaluations.
func wordDomain() []uint64 {
	fb := math.Float64bits
	words := []uint64{
		0, 1, 2, 3, 7, 63, 64, 255,
		1 << 31, 1 << 32, 1 << 63,
		math.MaxUint64 - 1, math.MaxUint64,
		fb(0.5), fb(1), fb(1.5), fb(2.5), fb(-2.5),
		fb(1e-300), fb(1e300),
		fb(math.Inf(1)), fb(math.Inf(-1)),
	}
	seen := make(map[uint64]bool, len(words))
	out := words[:0]
	for _, w := range words {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// evaluator owns the per-package compilation state shared across one
// pass run.
type evaluator struct {
	pass  *Pass
	decls map[types.Object]*ast.FuncDecl
}

func newEvaluator(pass *Pass) *evaluator {
	return &evaluator{pass: pass, decls: indexFuncDecls(pass)}
}

// compileCtx is the lexical context of one compilation: parameter slots,
// node-identity substitutions (used by merge extraction to stand a
// variable in for the edge-read call), and the shared free-symbol table.
type compileCtx struct {
	ev      *evaluator
	slots   map[types.Object]int
	subst   map[ast.Expr]int
	frees   *[]freeSym
	freeIdx map[string]int
	inlined map[*ast.FuncDecl]bool
	// scope, when set, bounds which plain identifiers may become free
	// symbols: an identifier declared *inside* scope (a local, a loop
	// variable) that is not slot-bound is a compile error — treating it
	// as an arbitrary capture would silently change the semantics the
	// laws are checked against. Identifiers declared outside scope
	// (receiver fields reached via selectors, captured slices) enumerate
	// as free symbols.
	scope ast.Node
}

// compileFunc compiles a function body consisting of a single return
// statement (after skipping doc-only statements), with params bound to
// slots 0..n-1. Used for kernel Message/Better literals, ResidualDelta
// methods, and same-package helper inlining.
func (ev *evaluator) compileFunc(params []types.Object, body *ast.BlockStmt, scope ast.Node) (compiled, error) {
	var frees []freeSym
	ctx := &compileCtx{
		ev:      ev,
		slots:   map[types.Object]int{},
		frees:   &frees,
		freeIdx: map[string]int{},
		inlined: map[*ast.FuncDecl]bool{},
		scope:   scope,
	}
	for i, p := range params {
		if p != nil {
			ctx.slots[p] = i
		}
	}
	fn, err := ctx.compileBody(body)
	if err != nil {
		return compiled{}, err
	}
	return compiled{fn: fn, frees: frees}, nil
}

// compileExprWith compiles a standalone expression under explicit slots
// and substitutions — the merge-extraction entry point.
func (ev *evaluator) compileExprWith(slots map[types.Object]int, subst map[ast.Expr]int, expr ast.Expr) (compiled, error) {
	var frees []freeSym
	ctx := &compileCtx{
		ev:      ev,
		slots:   slots,
		subst:   subst,
		frees:   &frees,
		freeIdx: map[string]int{},
		inlined: map[*ast.FuncDecl]bool{},
	}
	fn, err := ctx.compile(expr)
	if err != nil {
		return compiled{}, err
	}
	return compiled{fn: fn, frees: frees}, nil
}

// compileBody accepts exactly one return statement with one result.
func (c *compileCtx) compileBody(body *ast.BlockStmt) (evalFn, error) {
	if body == nil || len(body.List) != 1 {
		return nil, fmt.Errorf("unsupported body: want a single return statement")
	}
	ret, ok := body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil, fmt.Errorf("unsupported body: want a single-result return")
	}
	return c.compile(ret.Results[0])
}

// kindOfType maps a Go type to the evaluator's value universe.
func kindOfType(t types.Type) (valKind, uint8, bool) {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return kindInvalid, 0, false
	}
	switch b.Kind() {
	case types.Uint8:
		return kindUint, 8, true
	case types.Uint16:
		return kindUint, 16, true
	case types.Uint32:
		return kindUint, 32, true
	case types.Uint64, types.Uint, types.Uintptr:
		return kindUint, 64, true
	case types.Int8:
		return kindInt, 8, true
	case types.Int16:
		return kindInt, 16, true
	case types.Int32:
		return kindInt, 32, true
	case types.Int64, types.Int, types.UntypedInt:
		return kindInt, 64, true
	case types.Float64, types.UntypedFloat:
		return kindFloat, 0, true
	case types.Bool, types.UntypedBool:
		return kindBool, 0, true
	}
	return kindInvalid, 0, false
}

// compile builds the closure for expr. Resolution errors are compile
// errors — the passes treat them as "unverified", never as findings.
func (c *compileCtx) compile(expr ast.Expr) (evalFn, error) {
	// Node-identity substitution first: merge extraction replaces the
	// edge-read call with a bound argument slot.
	if slot, ok := c.subst[expr]; ok {
		return argFn(slot), nil
	}
	// Compile-time constants next (covers literals, named consts,
	// constant-folded expressions like math.MaxUint64 or 1<<32).
	if tv, ok := c.ev.pass.Info.Types[expr]; ok && tv.Value != nil {
		return constFn(tv.Value, tv.Type)
	}

	switch e := expr.(type) {
	case *ast.ParenExpr:
		return c.compile(e.X)
	case *ast.Ident:
		return c.compileIdent(e)
	case *ast.BinaryExpr:
		return c.compileBinary(e)
	case *ast.UnaryExpr:
		return c.compileUnary(e)
	case *ast.CallExpr:
		return c.compileCall(e)
	case *ast.SelectorExpr, *ast.IndexExpr:
		return c.compileCapture(expr)
	}
	return nil, fmt.Errorf("unsupported expression %T", expr)
}

func argFn(slot int) evalFn {
	return func(args, _ []val) (val, error) {
		if slot >= len(args) {
			return val{}, fmt.Errorf("argument slot %d out of range", slot)
		}
		return args[slot], nil
	}
}

func (c *compileCtx) compileIdent(e *ast.Ident) (evalFn, error) {
	obj := c.ev.pass.Info.Uses[e]
	if obj == nil {
		obj = c.ev.pass.Info.Defs[e]
	}
	if obj != nil {
		if slot, ok := c.slots[obj]; ok {
			return argFn(slot), nil
		}
		if c.scope != nil && declaredWithin(obj, c.scope) {
			return nil, fmt.Errorf("local %s is neither bound nor enumerable", e.Name)
		}
	}
	// A non-local identifier of basic type is a capture.
	return c.compileCapture(e)
}

// compileCapture turns an unresolvable read (receiver field, captured
// variable, indexed captured slice) into a free symbol.
func (c *compileCtx) compileCapture(expr ast.Expr) (evalFn, error) {
	t := c.ev.pass.Info.TypeOf(expr)
	if t == nil {
		return nil, fmt.Errorf("no type for capture %s", types.ExprString(expr))
	}
	kind, bits, ok := kindOfType(t)
	if !ok {
		return nil, fmt.Errorf("capture %s has non-basic type %s", types.ExprString(expr), t)
	}
	key := types.ExprString(expr)
	idx, seen := c.freeIdx[key]
	if !seen {
		if len(*c.frees) >= maxFreeSyms {
			return nil, fmt.Errorf("too many free symbols (capture %s)", key)
		}
		idx = len(*c.frees)
		*c.frees = append(*c.frees, freeSym{key: key, kind: kind, bits: bits})
		c.freeIdx[key] = idx
	}
	return func(_, frees []val) (val, error) {
		if idx >= len(frees) {
			return val{}, fmt.Errorf("free symbol %q unbound", key)
		}
		return frees[idx], nil
	}, nil
}

// constFn folds a compile-time constant into a fixed value of the
// expression's type.
func constFn(cv constant.Value, t types.Type) (evalFn, error) {
	kind, bits, ok := kindOfType(t)
	if !ok {
		return nil, fmt.Errorf("constant of non-basic type %s", t)
	}
	var v val
	switch kind {
	case kindUint:
		u, ok := constant.Uint64Val(cv)
		if !ok {
			return nil, fmt.Errorf("constant %s does not fit uint64", cv)
		}
		v = vUint(u, bits)
	case kindInt:
		i, ok := constant.Int64Val(cv)
		if !ok {
			return nil, fmt.Errorf("constant %s does not fit int64", cv)
		}
		v = vInt(i, bits)
	case kindFloat:
		f, _ := constant.Float64Val(cv)
		v = vFloat(f)
	case kindBool:
		if cv.Kind() != constant.Bool {
			return nil, fmt.Errorf("non-bool constant %s for bool type", cv)
		}
		v = vBool(constant.BoolVal(cv))
	}
	return func(_, _ []val) (val, error) { return v, nil }, nil
}

func (c *compileCtx) compileBinary(e *ast.BinaryExpr) (evalFn, error) {
	x, err := c.compile(e.X)
	if err != nil {
		return nil, err
	}
	y, err := c.compile(e.Y)
	if err != nil {
		return nil, err
	}
	op := e.Op
	// Short-circuit booleans keep Go semantics (the right operand of &&
	// is not evaluated when the left is false).
	if op == token.LAND || op == token.LOR {
		return func(args, frees []val) (val, error) {
			a, err := x(args, frees)
			if err != nil {
				return val{}, err
			}
			if a.k != kindBool {
				return val{}, fmt.Errorf("boolean operator on %v", a.k)
			}
			if op == token.LAND && !a.b {
				return vBool(false), nil
			}
			if op == token.LOR && a.b {
				return vBool(true), nil
			}
			return y(args, frees)
		}, nil
	}
	return func(args, frees []val) (val, error) {
		a, err := x(args, frees)
		if err != nil {
			return val{}, err
		}
		b, err := y(args, frees)
		if err != nil {
			return val{}, err
		}
		return applyBinary(op, a, b)
	}, nil
}

func applyBinary(op token.Token, a, b val) (val, error) {
	// Shifts allow mixed integer kinds on the count operand.
	if op == token.SHL || op == token.SHR {
		return applyShift(op, a, b)
	}
	if a.k != b.k {
		return val{}, fmt.Errorf("operand kind mismatch %v vs %v", a.k, b.k)
	}
	switch a.k {
	case kindUint:
		return applyUint(op, a, b)
	case kindInt:
		return applyInt(op, a, b)
	case kindFloat:
		return applyFloat(op, a, b)
	case kindBool:
		switch op {
		case token.EQL:
			return vBool(a.b == b.b), nil
		case token.NEQ:
			return vBool(a.b != b.b), nil
		}
	}
	return val{}, fmt.Errorf("unsupported operator %s on %v", op, a.k)
}

func applyShift(op token.Token, a, b val) (val, error) {
	var count uint64
	switch b.k {
	case kindUint:
		count = b.u
	case kindInt:
		if b.i < 0 {
			return val{}, fmt.Errorf("negative shift count")
		}
		count = uint64(b.i)
	default:
		return val{}, fmt.Errorf("non-integer shift count")
	}
	if count > 64 {
		count = 64
	}
	switch a.k {
	case kindUint:
		if op == token.SHL {
			if count >= 64 {
				return vUint(0, a.bits), nil
			}
			return vUint(a.u<<count, a.bits), nil
		}
		if count >= 64 {
			return vUint(0, a.bits), nil
		}
		return vUint(a.u>>count, a.bits), nil
	case kindInt:
		if op == token.SHL {
			if count >= 64 {
				return vInt(0, a.bits), nil
			}
			return vInt(a.i<<count, a.bits), nil
		}
		if count >= 64 {
			count = 63
		}
		return vInt(a.i>>count, a.bits), nil
	}
	return val{}, fmt.Errorf("shift of %v", a.k)
}

func applyUint(op token.Token, a, b val) (val, error) {
	switch op {
	case token.ADD:
		return vUint(a.u+b.u, a.bits), nil
	case token.SUB:
		return vUint(a.u-b.u, a.bits), nil
	case token.MUL:
		return vUint(a.u*b.u, a.bits), nil
	case token.QUO:
		if b.u == 0 {
			return val{}, fmt.Errorf("division by zero")
		}
		return vUint(a.u/b.u, a.bits), nil
	case token.REM:
		if b.u == 0 {
			return val{}, fmt.Errorf("division by zero")
		}
		return vUint(a.u%b.u, a.bits), nil
	case token.AND:
		return vUint(a.u&b.u, a.bits), nil
	case token.OR:
		return vUint(a.u|b.u, a.bits), nil
	case token.XOR:
		return vUint(a.u^b.u, a.bits), nil
	case token.AND_NOT:
		return vUint(a.u&^b.u, a.bits), nil
	case token.LSS:
		return vBool(a.u < b.u), nil
	case token.LEQ:
		return vBool(a.u <= b.u), nil
	case token.GTR:
		return vBool(a.u > b.u), nil
	case token.GEQ:
		return vBool(a.u >= b.u), nil
	case token.EQL:
		return vBool(a.u == b.u), nil
	case token.NEQ:
		return vBool(a.u != b.u), nil
	}
	return val{}, fmt.Errorf("unsupported uint operator %s", op)
}

func applyInt(op token.Token, a, b val) (val, error) {
	switch op {
	case token.ADD:
		return vInt(a.i+b.i, a.bits), nil
	case token.SUB:
		return vInt(a.i-b.i, a.bits), nil
	case token.MUL:
		return vInt(a.i*b.i, a.bits), nil
	case token.QUO:
		if b.i == 0 {
			return val{}, fmt.Errorf("division by zero")
		}
		return vInt(a.i/b.i, a.bits), nil
	case token.REM:
		if b.i == 0 {
			return val{}, fmt.Errorf("division by zero")
		}
		return vInt(a.i%b.i, a.bits), nil
	case token.AND:
		return vInt(a.i&b.i, a.bits), nil
	case token.OR:
		return vInt(a.i|b.i, a.bits), nil
	case token.XOR:
		return vInt(a.i^b.i, a.bits), nil
	case token.AND_NOT:
		return vInt(a.i&^b.i, a.bits), nil
	case token.LSS:
		return vBool(a.i < b.i), nil
	case token.LEQ:
		return vBool(a.i <= b.i), nil
	case token.GTR:
		return vBool(a.i > b.i), nil
	case token.GEQ:
		return vBool(a.i >= b.i), nil
	case token.EQL:
		return vBool(a.i == b.i), nil
	case token.NEQ:
		return vBool(a.i != b.i), nil
	}
	return val{}, fmt.Errorf("unsupported int operator %s", op)
}

func applyFloat(op token.Token, a, b val) (val, error) {
	switch op {
	case token.ADD:
		return vFloat(a.f + b.f), nil
	case token.SUB:
		return vFloat(a.f - b.f), nil
	case token.MUL:
		return vFloat(a.f * b.f), nil
	case token.QUO:
		return vFloat(a.f / b.f), nil
	case token.LSS:
		return vBool(a.f < b.f), nil
	case token.LEQ:
		return vBool(a.f <= b.f), nil
	case token.GTR:
		return vBool(a.f > b.f), nil
	case token.GEQ:
		return vBool(a.f >= b.f), nil
	case token.EQL:
		return vBool(a.f == b.f), nil
	case token.NEQ:
		return vBool(a.f != b.f), nil
	}
	return val{}, fmt.Errorf("unsupported float operator %s", op)
}

func (c *compileCtx) compileUnary(e *ast.UnaryExpr) (evalFn, error) {
	x, err := c.compile(e.X)
	if err != nil {
		return nil, err
	}
	op := e.Op
	return func(args, frees []val) (val, error) {
		a, err := x(args, frees)
		if err != nil {
			return val{}, err
		}
		switch op {
		case token.SUB:
			switch a.k {
			case kindUint:
				return vUint(-a.u, a.bits), nil
			case kindInt:
				return vInt(-a.i, a.bits), nil
			case kindFloat:
				return vFloat(-a.f), nil
			}
		case token.NOT:
			if a.k == kindBool {
				return vBool(!a.b), nil
			}
		case token.XOR:
			switch a.k {
			case kindUint:
				return vUint(^a.u, a.bits), nil
			case kindInt:
				return vInt(^a.i, a.bits), nil
			}
		case token.ADD:
			return a, nil
		}
		return val{}, fmt.Errorf("unsupported unary %s on %v", op, a.k)
	}, nil
}

func (c *compileCtx) compileCall(call *ast.CallExpr) (evalFn, error) {
	// Type conversion: T(x) for basic T.
	if tv, ok := c.ev.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return nil, fmt.Errorf("conversion with %d args", len(call.Args))
		}
		kind, bits, ok := kindOfType(tv.Type)
		if !ok {
			return nil, fmt.Errorf("conversion to non-basic type %s", tv.Type)
		}
		x, err := c.compile(call.Args[0])
		if err != nil {
			return nil, err
		}
		return func(args, frees []val) (val, error) {
			a, err := x(args, frees)
			if err != nil {
				return val{}, err
			}
			return convert(a, kind, bits)
		}, nil
	}

	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = c.ev.pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = c.ev.pass.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil, fmt.Errorf("unsupported call %s", types.ExprString(call.Fun))
	}

	// Compile the arguments once, shared by both dispatch paths.
	argFns := make([]evalFn, len(call.Args))
	for i, a := range call.Args {
		f, err := c.compile(a)
		if err != nil {
			return nil, err
		}
		argFns[i] = f
	}
	evalArgs := func(args, frees []val) ([]val, error) {
		out := make([]val, len(argFns))
		for i, f := range argFns {
			v, err := f(args, frees)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	// Intrinsics: a fixed set of pure stdlib-shaped functions matched by
	// package *name* so fixture replicas qualify exactly like the real
	// packages (the IsVertexView convention).
	if fn.Pkg() != nil && fn.Pkg() != c.ev.pass.Pkg {
		intr, ok := intrinsic(fn.Pkg().Name(), fn.Name())
		if !ok {
			return nil, fmt.Errorf("call to unknown function %s.%s", fn.Pkg().Name(), fn.Name())
		}
		return func(args, frees []val) (val, error) {
			in, err := evalArgs(args, frees)
			if err != nil {
				return val{}, err
			}
			return intr(in)
		}, nil
	}

	// Same-package pure helper: inline its single-return body with the
	// parameters bound to fresh slots. Recursion is a compile error.
	decl := c.ev.decls[fn]
	if decl == nil || decl.Body == nil {
		return nil, fmt.Errorf("no body for %s", fn.Name())
	}
	if decl.Recv != nil {
		return nil, fmt.Errorf("method call %s", fn.Name())
	}
	if c.inlined[decl] {
		return nil, fmt.Errorf("recursive call to %s", fn.Name())
	}
	c.inlined[decl] = true
	defer delete(c.inlined, decl)

	var params []types.Object
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			params = append(params, c.ev.pass.Info.Defs[name])
		}
	}
	if len(params) != len(argFns) {
		return nil, fmt.Errorf("%s: variadic or unnamed parameters unsupported", fn.Name())
	}
	inner := &compileCtx{
		ev:      c.ev,
		slots:   map[types.Object]int{},
		frees:   c.frees,
		freeIdx: c.freeIdx,
		inlined: c.inlined,
	}
	for i, p := range params {
		if p != nil {
			inner.slots[p] = i
		}
	}
	body, err := inner.compileBody(decl.Body)
	if err != nil {
		return nil, fmt.Errorf("inlining %s: %w", fn.Name(), err)
	}
	return func(args, frees []val) (val, error) {
		in, err := evalArgs(args, frees)
		if err != nil {
			return val{}, err
		}
		return body(in, frees)
	}, nil
}

func convert(a val, kind valKind, bits uint8) (val, error) {
	switch kind {
	case kindUint:
		switch a.k {
		case kindUint:
			return vUint(a.u, bits), nil
		case kindInt:
			return vUint(uint64(a.i), bits), nil
		case kindFloat:
			return vUint(uint64(a.f), bits), nil
		}
	case kindInt:
		switch a.k {
		case kindUint:
			return vInt(int64(a.u), bits), nil
		case kindInt:
			return vInt(a.i, bits), nil
		case kindFloat:
			return vInt(int64(a.f), bits), nil
		}
	case kindFloat:
		switch a.k {
		case kindUint:
			return vFloat(float64(a.u)), nil
		case kindInt:
			return vFloat(float64(a.i)), nil
		case kindFloat:
			return a, nil
		}
	}
	return val{}, fmt.Errorf("unsupported conversion from %v", a.k)
}

// intrinsic resolves the small external-function vocabulary the merge
// and kernel expressions actually use: bit-casting (edgedata, math) and
// elementary float math. Everything else is a compile error.
func intrinsic(pkg, name string) (func([]val) (val, error), bool) {
	need := func(in []val, n int) error {
		if len(in) != n {
			return fmt.Errorf("%s.%s: want %d args, got %d", pkg, name, n, len(in))
		}
		return nil
	}
	f1 := func(f func(float64) float64) func([]val) (val, error) {
		return func(in []val) (val, error) {
			if err := need(in, 1); err != nil {
				return val{}, err
			}
			if in[0].k != kindFloat {
				return val{}, fmt.Errorf("%s.%s: non-float argument", pkg, name)
			}
			return vFloat(f(in[0].f)), nil
		}
	}
	switch pkg {
	case "edgedata":
		switch name {
		case "ToFloat64":
			return func(in []val) (val, error) {
				if err := need(in, 1); err != nil {
					return val{}, err
				}
				if in[0].k != kindUint {
					return val{}, fmt.Errorf("edgedata.ToFloat64: non-uint argument")
				}
				return vFloat(math.Float64frombits(in[0].u)), nil
			}, true
		case "FromFloat64":
			return func(in []val) (val, error) {
				if err := need(in, 1); err != nil {
					return val{}, err
				}
				if in[0].k != kindFloat {
					return val{}, fmt.Errorf("edgedata.FromFloat64: non-float argument")
				}
				return vUint(math.Float64bits(in[0].f), 64), nil
			}, true
		}
	case "math":
		switch name {
		case "Abs":
			return f1(math.Abs), true
		case "Sqrt":
			return f1(math.Sqrt), true
		case "Float64frombits":
			return func(in []val) (val, error) {
				if err := need(in, 1); err != nil {
					return val{}, err
				}
				if in[0].k != kindUint {
					return val{}, fmt.Errorf("math.Float64frombits: non-uint argument")
				}
				return vFloat(math.Float64frombits(in[0].u)), nil
			}, true
		case "Float64bits":
			return func(in []val) (val, error) {
				if err := need(in, 1); err != nil {
					return val{}, err
				}
				if in[0].k != kindFloat {
					return val{}, fmt.Errorf("math.Float64bits: non-float argument")
				}
				return vUint(math.Float64bits(in[0].f), 64), nil
			}, true
		case "Inf":
			return func(in []val) (val, error) {
				if err := need(in, 1); err != nil {
					return val{}, err
				}
				sign := 1
				if in[0].k == kindInt && in[0].i < 0 {
					sign = -1
				}
				return vFloat(math.Inf(sign)), nil
			}, true
		case "IsNaN":
			return func(in []val) (val, error) {
				if err := need(in, 1); err != nil {
					return val{}, err
				}
				return vBool(in[0].k == kindFloat && math.IsNaN(in[0].f)), nil
			}, true
		case "IsInf":
			return func(in []val) (val, error) {
				if err := need(in, 2); err != nil {
					return val{}, err
				}
				sign := 0
				if in[1].k == kindInt {
					sign = int(in[1].i)
				}
				return vBool(in[0].k == kindFloat && math.IsInf(in[0].f, sign)), nil
			}, true
		case "Max":
			return func(in []val) (val, error) {
				if err := need(in, 2); err != nil {
					return val{}, err
				}
				return vFloat(math.Max(in[0].f, in[1].f)), nil
			}, true
		case "Min":
			return func(in []val) (val, error) {
				if err := need(in, 2); err != nil {
					return val{}, err
				}
				return vFloat(math.Min(in[0].f, in[1].f)), nil
			}, true
		}
	}
	return nil, false
}

// srcHash renders the nodes with go/printer and returns the FNV-1a hash
// of the concatenation — the certificate's source identity. The printer
// normalizes whitespace, so reformatting does not invalidate a
// certificate, while any token-level change does.
func srcHash(fset *token.FileSet, nodes ...ast.Node) string {
	h := fnv.New64a()
	var buf strings.Builder
	for _, n := range nodes {
		if n == nil {
			continue
		}
		buf.Reset()
		// Errors are impossible for parsed ASTs; a failure would only
		// perturb the hash, which re-analysis detects anyway.
		_ = printer.Fprint(&buf, fset, n)
		_, _ = h.Write([]byte(buf.String()))
		_, _ = h.Write([]byte{0})
	}
	return fmt.Sprintf("fnv1a:%016x", h.Sum64())
}
