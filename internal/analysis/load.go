package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// The loader type-checks module packages without golang.org/x/tools: it
// asks the go command for compiled export data (`go list -export -deps
// -json`) and feeds it to the standard library's gc importer. Within one
// toolchain version — the only configuration this repository supports —
// that is exactly what a unitchecker-based driver does with
// go/gcexportdata, minus the external dependency.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir (a module directory), type-checks every
// matched (non-dependency) package from source against the export data of
// its dependencies, and returns them sorted by import path.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			msg = string(ee.Stderr)
		}
		return nil, fmt.Errorf("go list %v: %s", patterns, msg)
	}

	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := TypeCheckFiles(t.ImportPath, t.Dir, t.GoFiles, func(path string) (io.ReadCloser, error) {
			e, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(e)
		})
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// TypeCheckFiles parses files (relative names resolved against dir) and
// checks them with a gc importer that reads export data through lookup.
// It is the shared back end of Load and cmd/ndlint's vet.cfg mode, where
// the go command supplies the file and export-data lists directly.
func TypeCheckFiles(importPath, dir string, files []string, lookup func(string) (io.ReadCloser, error)) (*Package, error) {
	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, name := range files {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", importPath, err)
		}
		parsed = append(parsed, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(importPath, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: parsed, Types: tpkg, Info: info}, nil
}

// StdExports resolves export-data files for standard-library packages via
// one `go list -export` invocation — used by the fixture harness, whose
// corpora live outside any module.
func StdExports(paths ...string) (map[string]string, error) {
	if len(paths) == 0 {
		return map[string]string{}, nil
	}
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, paths...)
	cmd := exec.Command("go", args...)
	out, err := cmd.Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			msg = string(ee.Stderr)
		}
		return nil, fmt.Errorf("go list -export %v: %s", paths, msg)
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
