package analysis

// certificate.go assembles eligibility certificates from the pass
// results: one "update" certificate per algorithm whose Properties are
// statically readable (joining conflictclass's profile, propcheck's
// merge laws, and admitcheck's gate derivation on the shared source
// hash) and one "kernel" certificate per Kernel literal. cmd/ndlint
// -cert emits them; internal/algorithms embeds the emitted JSON so
// engine admission can accept certificates without re-running analysis,
// and the consistency test re-derives them to catch staleness.

import (
	"fmt"
	"strings"

	"ndgraph/internal/eligibility"
)

// Certificates analyzes pkg and returns the eligibility certificates it
// supports, sorted updates-then-kernels in source order. Diagnostics are
// returned alongside: a package that fails lint can still be inspected,
// but callers wiring certificates into admission should refuse to emit
// them when diags is non-empty (a refuted declaration must not certify).
func Certificates(pkg *Package) ([]eligibility.Certificate, []Diagnostic, error) {
	diags, results, err := RunAnalyzers(pkg, Default())
	if err != nil {
		return nil, nil, err
	}
	props, _ := results[PropCheck.Name].([]PropReport)
	admits, _ := results[AdmitCheck.Name].([]AdmitReport)
	kernels, _ := results[KernelCheck.Name].([]KernelReport)

	admitByHash := make(map[string]AdmitReport, len(admits))
	for _, a := range admits {
		admitByHash[a.Hash] = a
	}

	var certs []eligibility.Certificate
	for _, p := range props {
		a, ok := admitByHash[p.Hash]
		if !ok || p.Props == nil {
			continue // no readable Properties ⇒ nothing to certify
		}
		// SSSP builds its Name at runtime ("sssp" or "bfs" share one
		// update), so the extracted Name is empty; fall back to the
		// lower-cased receiver type, which matches the registry key.
		name := p.Props.Name
		if name == "" && p.Recv != "" {
			name = strings.ToLower(p.Recv)
		}
		if name == "" {
			name = p.Name
		}
		profile := a.Profile
		c := eligibility.Certificate{
			Name:                  name,
			Kind:                  "update",
			SourceHash:            p.Hash,
			Profile:               &profile,
			Props:                 p.Props,
			Theorem:               a.Theorem,
			DeterministicResults:  a.DeterministicResults,
			NoSyncOK:              a.NoSyncOK,
			EpsilonStopOK:         a.EpsilonStopOK,
			MergeVerified:         p.Merge.Extracted && p.Merge.SemilatticeVerified,
			ResidualDeltaVerified: a.ResidualDeltaChecked && a.ResidualDeltaOK,
		}
		certs = append(certs, c)
	}
	for _, k := range kernels {
		if k.Name == "" {
			continue // anonymous kernels can't be matched at admission
		}
		f := k.Facts
		certs = append(certs, eligibility.Certificate{
			Name:       k.Name,
			Kind:       "kernel",
			SourceHash: k.Hash,
			Kernel: &eligibility.KernelCert{
				DirectionConsistent: f.DirectionConsistent,
				BetterIrreflexive:   f.BetterIrreflexive,
				BetterAntisymmetric: f.BetterAntisymmetric,
				BetterTransitive:    f.BetterTransitive,
				BetterTotal:         f.BetterTotal,
				EdgeIndexed:         f.EdgeIndexedDeclared,
				FirstOfferWins:      f.FirstOfferWinsDeclared,
				Unreached:           f.Unreached,
			},
		})
	}
	return certs, diags, nil
}

// CertificateFor selects a certificate by kind and name.
func CertificateFor(certs []eligibility.Certificate, kind, name string) (*eligibility.Certificate, error) {
	for i := range certs {
		if certs[i].Kind == kind && certs[i].Name == name {
			return &certs[i], nil
		}
	}
	return nil, fmt.Errorf("analysis: no %s certificate for %q", kind, name)
}
