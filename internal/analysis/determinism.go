package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism flags sources of run-to-run nondeterminism *inside* update
// functions: wall-clock reads, math/rand, and map iteration. These do not
// affect the paper's convergence theorems (which tolerate scheduling
// nondeterminism), but they break everything in this repository that
// relies on an update being a pure function of its view — trace
// record/replay (ReplayTrace forces recorded racy reads and asserts a
// byte-identical fixed point) and the cross-engine differential suite
// (which pins every engine to the same sequential fixed point).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flag wall clocks, math/rand, and map iteration inside update " +
		"functions — they break record/replay and differential testing",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) (any, error) {
	for _, u := range FindUpdateFuncs(pass) {
		checkDeterminism(pass, u)
	}
	return nil, nil
}

func checkDeterminism(pass *Pass, u UpdateFn) {
	ast.Inspect(u.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(s.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(s.Pos(),
						"%s ranges over a map: Go randomizes map iteration order, so two runs of the same schedule can diverge — ReplayTrace and the cross-engine differential suite both assume the update is a pure function of its view",
						u.Name)
				}
			}
		case *ast.CallExpr:
			pkg, fn := calledFunc(pass, s)
			switch {
			case pkg == "time" && (fn == "Now" || fn == "Since" || fn == "Until"):
				pass.Reportf(s.Pos(),
					"%s reads the wall clock (time.%s): the result differs across runs and engines, breaking record/replay",
					u.Name, fn)
			case pkg == "math/rand" || pkg == "math/rand/v2":
				pass.Reportf(s.Pos(),
					"%s calls %s.%s: unseeded process-global randomness differs across runs, breaking record/replay — derive randomness from internal/rng with a fixed seed at setup time instead",
					u.Name, pkg, fn)
			}
		}
		return true
	})
}

// calledFunc resolves a call to (package path, function name); empty
// strings when the callee is not a named function from a package.
func calledFunc(pass *Pass, call *ast.CallExpr) (string, string) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}
