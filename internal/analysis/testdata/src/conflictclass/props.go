// Package conflictclass exercises the static conflict classifier. The
// Properties/Condition types replicate internal/eligibility's — the pass
// extracts premises by field name, so the fixture stays self-contained.
package conflictclass

// Condition mirrors eligibility.Condition.
type Condition int

const (
	Absolute Condition = iota
	Approximate
)

// Properties mirrors eligibility.Properties.
type Properties struct {
	Name                   string
	ConvergesSynchronously bool
	ConvergesDetAsync      bool
	Monotonic              bool
	Convergence            Condition
}
