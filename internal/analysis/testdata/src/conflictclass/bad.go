// Positive conflictclass fixtures: worst-case profiles not covered by
// either theorem.
package conflictclass

import "core"

// BadColoring is the coloring shape: write-write conflicts (both endpoints
// rewrite shared edge words) without monotonicity — Theorem 2's premise
// fails.
type BadColoring struct{}

func (*BadColoring) Properties() Properties {
	return Properties{Name: "badcoloring", ConvergesDetAsync: true, Monotonic: false, Convergence: Absolute}
}

func (*BadColoring) Update(ctx core.VertexView) { // want `statically NOT ELIGIBLE` `monotonic=false`
	c := ctx.Vertex() + 1
	ctx.SetVertex(c)
	for k := 0; k < ctx.InDegree(); k++ {
		ctx.SetInEdgeVal(k, ctx.InEdgeVal(k)>>32|c)
	}
	for k := 0; k < ctx.OutDegree(); k++ {
		ctx.SetOutEdgeVal(k, ctx.OutEdgeVal(k)<<32|c)
	}
}

// BadOscillator is the label-propagation shape: read-write conflicts only,
// but neither convergence premise holds, so Theorem 1 does not apply.
type BadOscillator struct{}

func (*BadOscillator) Properties() Properties {
	return Properties{Name: "badoscillator"}
}

func (*BadOscillator) Update(ctx core.VertexView) { // want `statically NOT ELIGIBLE` `no convergence premise`
	best := uint64(0)
	for k := 0; k < ctx.InDegree(); k++ {
		if v := ctx.InEdgeVal(k); v > best {
			best = v
		}
	}
	ctx.SetVertex(best)
	for k := 0; k < ctx.OutDegree(); k++ {
		ctx.SetOutEdgeVal(k, best)
	}
}

// Orphan writes both edge sides but declares no Properties, so the
// Theorem 2 premises cannot be checked at all.
type Orphan struct{}

func (*Orphan) Update(ctx core.VertexView) { // want `no statically readable Properties`
	v := ctx.Vertex()
	for k := 0; k < ctx.InDegree(); k++ {
		ctx.SetInEdgeVal(k, v)
	}
	for k := 0; k < ctx.OutDegree(); k++ {
		ctx.SetOutEdgeVal(k, v)
	}
}
