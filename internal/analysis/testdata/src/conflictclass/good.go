// Negative conflictclass fixtures: eligible worst cases are silent.
package conflictclass

import "core"

// GoodWCC has the same WW profile as BadColoring but is monotone and
// converges det-async — Theorem 2 covers it.
type GoodWCC struct{}

func (*GoodWCC) Properties() Properties {
	return Properties{
		Name:                   "goodwcc",
		ConvergesSynchronously: true,
		ConvergesDetAsync:      true,
		Monotonic:              true,
		Convergence:            Absolute,
	}
}

func (*GoodWCC) Update(ctx core.VertexView) {
	min := ctx.Vertex()
	for k := 0; k < ctx.InDegree(); k++ {
		if w := ctx.InEdgeVal(k); w < min {
			min = w
		}
	}
	for k := 0; k < ctx.OutDegree(); k++ {
		if w := ctx.OutEdgeVal(k); w < min {
			min = w
		}
	}
	ctx.SetVertex(min)
	for k := 0; k < ctx.InDegree(); k++ {
		ctx.SetInEdgeVal(k, min)
	}
	for k := 0; k < ctx.OutDegree(); k++ {
		ctx.SetOutEdgeVal(k, min)
	}
}

// GoodPR is the PageRank shape — read-write conflicts only, synchronous
// convergence — split across helpers to exercise call-graph propagation:
// the profile must be the union of gather's reads and scatter's writes.
type GoodPR struct{}

func (*GoodPR) Properties() Properties {
	return Properties{
		Name:                   "goodpr",
		ConvergesSynchronously: true,
		ConvergesDetAsync:      true,
		Convergence:            Approximate,
	}
}

func (*GoodPR) Update(ctx core.VertexView) {
	sum := gather(ctx)
	ctx.SetVertex(sum)
	scatter(ctx, sum)
}

func gather(ctx core.VertexView) uint64 {
	sum := uint64(0)
	for k := 0; k < ctx.InDegree(); k++ {
		sum += ctx.InEdgeVal(k)
	}
	return sum
}

func scatter(ctx core.VertexView, w uint64) {
	for k := 0; k < ctx.OutDegree(); k++ {
		ctx.SetOutEdgeVal(k, w)
	}
}
