// Negative atomicity fixtures: full-word overwrites (WCC-style) and
// cross-word data flow are fine under per-word atomicity.
package atomicity

import "core"

// fullOverwrite is the WCC shape: the written value is a full-word
// replacement computed from the gather phase, not a partial rewrite of the
// word being stored — reading the same word in the *guard* is harmless.
func fullOverwrite(ctx core.VertexView) {
	min := ctx.Vertex()
	for k := 0; k < ctx.InDegree(); k++ {
		if w := ctx.InEdgeVal(k); w < min {
			min = w
		}
	}
	ctx.SetVertex(min)
	for k := 0; k < ctx.InDegree(); k++ {
		if ctx.InEdgeVal(k) > min {
			ctx.SetInEdgeVal(k, min)
		}
	}
}

// crossWord writes word k from a read of a *different* word — a data
// dependence, not a read-modify-write of the same shared location.
func crossWord(ctx core.VertexView) {
	for k := 1; k < ctx.OutDegree(); k++ {
		prev := ctx.OutEdgeVal(k - 1)
		ctx.SetOutEdgeVal(k, prev+1)
	}
}
