// Positive atomicity fixtures: packed sub-word read-modify-writes of edge
// words, which per-word atomicity cannot protect.
package atomicity

import "core"

// PackedHalves is the kcore/coloring idiom: each edge word packs both
// endpoints' values, so updating one half preserves the other via a
// read-modify-write.
func PackedHalves(ctx core.VertexView) {
	cur := uint32(ctx.Vertex())
	for k := 0; k < ctx.InDegree(); k++ {
		w := ctx.InEdgeVal(k)
		ctx.SetInEdgeVal(k, uint64(uint32(w))|uint64(cur)<<32) // want `read-modify-write`
	}
	for k := 0; k < ctx.OutDegree(); k++ {
		w := ctx.OutEdgeVal(k)
		ctx.SetOutEdgeVal(k, uint64(cur)|w&^uint64(0xffffffff)) // want `read-modify-write`
	}
}

// InlineRMW derives the new word from a read nested directly in the write.
func InlineRMW(ctx core.VertexView) {
	for k := 0; k < ctx.OutDegree(); k++ {
		ctx.SetOutEdgeVal(k, ctx.OutEdgeVal(k)|1) // want `read-modify-write`
	}
}
