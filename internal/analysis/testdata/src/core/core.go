// Package core is the fixture replica of ndgraph/internal/core's view
// surface: the passes match the VertexView contract by interface name and
// package name, so this stand-in lets the golden corpus compile without
// importing the real module.
package core

// VertexView mirrors ndgraph/internal/core.VertexView.
type VertexView interface {
	V() uint32
	Vertex() uint64
	SetVertex(w uint64)
	InDegree() int
	OutDegree() int
	InNeighbor(k int) uint32
	OutNeighbor(k int) uint32
	InEdgeID(k int) uint32
	OutEdgeID(k int) uint32
	InEdgeVal(k int) uint64
	OutEdgeVal(k int) uint64
	SetInEdgeVal(k int, w uint64)
	SetOutEdgeVal(k int, w uint64)
	ScheduleSelf()
	Yield()
}
