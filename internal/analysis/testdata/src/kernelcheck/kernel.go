// Package kernelcheck exercises the kernel-pair verifier. Kernel
// replicates internal/algorithms.Kernel structurally — the pass matches
// the type by name and field signatures, so the fixture stays
// self-contained.
package kernelcheck

// Kernel mirrors ndgraph/internal/algorithms.Kernel.
type Kernel struct {
	Name           string
	Undirected     bool
	Message        func(srcVal uint64, e uint32) uint64
	Better         func(candidate, current uint64) bool
	EdgeIndexed    bool
	FirstOfferWins bool
	Unreached      uint64
}
