// Negative kernelcheck fixtures: broken order laws and dishonest
// capability flags, each refuted with a concrete counter-example.
package kernelcheck

// BadNeq's Better holds between ANY distinct pair — both directions at
// once, so two workers can improve each other's value forever, and the
// improvement relation cycles.
func BadNeq() Kernel {
	return Kernel{ // want `Better is not antisymmetric` `Better is not transitive`
		Name:    "badneq",
		Message: func(srcVal uint64, e uint32) uint64 { return srcVal },
		Better:  func(candidate, current uint64) bool { return candidate != current },
	}
}

// BadEdgeUnused declares EdgeIndexed but its Message never reads the
// edge parameter.
func BadEdgeUnused() Kernel {
	return Kernel{ // want `declares EdgeIndexed but Message ignores its edge parameter`
		Name:        "badedgeunused",
		EdgeIndexed: true,
		Message:     func(srcVal uint64, e uint32) uint64 { return srcVal },
		Better:      func(candidate, current uint64) bool { return candidate < current },
	}
}

// BadEdgeUndeclared reads the edge parameter without declaring
// EdgeIndexed — executors may then pass any index.
func BadEdgeUndeclared() Kernel {
	return Kernel{ // want `does not declare EdgeIndexed`
		Name:    "badedgeundeclared",
		Message: func(srcVal uint64, e uint32) uint64 { return srcVal + uint64(e) },
		Better:  func(candidate, current uint64) bool { return candidate < current },
	}
}

// BadFOW declares FirstOfferWins with an unreached word of zero under a
// min-improvement order: the initial state beats every offer.
func BadFOW() Kernel {
	return Kernel{ // want `declares FirstOfferWins but Better`
		Name:           "badfow",
		FirstOfferWins: true,
		Unreached:      0,
		Message:        func(srcVal uint64, e uint32) uint64 { return srcVal + 1 },
		Better:         func(candidate, current uint64) bool { return candidate < current },
	}
}
