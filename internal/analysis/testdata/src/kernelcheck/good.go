// Positive kernelcheck fixtures: law-clean kernels with honest
// capability flags are silent.
package kernelcheck

// GoodMin is the WCC shape: propagate the smaller word, strict
// less-than improvement. Irreflexive, antisymmetric, transitive, total.
func GoodMin() Kernel {
	return Kernel{
		Name:    "goodmin",
		Message: func(srcVal uint64, e uint32) uint64 { return srcVal },
		Better:  func(candidate, current uint64) bool { return candidate < current },
	}
}

// GoodEdge is the SSSP shape: the offer depends on the edge, and the
// kernel says so.
func GoodEdge() Kernel {
	return Kernel{
		Name:        "goodedge",
		EdgeIndexed: true,
		Message:     func(srcVal uint64, e uint32) uint64 { return srcVal + uint64(e) },
		Better:      func(candidate, current uint64) bool { return candidate < current },
	}
}

// GoodFOW is the BFS shape: the unreached word is the maximum, so it
// never displaces an accepted offer.
func GoodFOW() Kernel {
	return Kernel{
		Name:           "goodfow",
		FirstOfferWins: true,
		Unreached:      ^uint64(0),
		Message:        func(srcVal uint64, e uint32) uint64 { return srcVal + 1 },
		Better:         func(candidate, current uint64) bool { return candidate < current },
	}
}
