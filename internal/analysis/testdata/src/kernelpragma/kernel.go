// Package kernelpragma exercises constructor-level kernelcheck
// suppression. No // want annotations: TestKernelPragmaSuppression
// asserts on the diagnostics and reports directly, because the malformed
// pragma's own diagnostic lands on the pragma comment's line, where no
// second comment can sit.
package kernelpragma

// Kernel mirrors ndgraph/internal/algorithms.Kernel.
type Kernel struct {
	Name    string
	Message func(srcVal uint64, e uint32) uint64
	Better  func(candidate, current uint64) bool
}

// Waived builds a deliberately unsound kernel for a drift-measurement
// path; the constructor-level pragma must silence the pass for every
// kernel built inside it.
//
//ndlint:ignore kernelcheck measurement-only kernel, never admitted to an engine
func Waived() Kernel {
	return Kernel{
		Name:    "waived",
		Message: func(srcVal uint64, e uint32) uint64 { return srcVal },
		Better:  func(candidate, current uint64) bool { return candidate != current },
	}
}

// Unwaived carries a REASON-LESS pragma: it must not suppress, and the
// pragma itself must be diagnosed as malformed.
//
//ndlint:ignore kernelcheck
func Unwaived() Kernel {
	return Kernel{
		Name:    "unwaived",
		Message: func(srcVal uint64, e uint32) uint64 { return srcVal },
		Better:  func(candidate, current uint64) bool { return candidate != current },
	}
}
