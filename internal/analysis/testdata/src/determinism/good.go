// Negative determinism fixtures: deterministic iteration and a justified
// pragma produce no diagnostics.
package determinism

import "core"

// deterministicUpdate iterates slices and the view only.
func deterministicUpdate(ctx core.VertexView) {
	vals := make([]uint64, 0, ctx.InDegree())
	for k := 0; k < ctx.InDegree(); k++ {
		vals = append(vals, ctx.InEdgeVal(k))
	}
	best := uint64(0)
	for _, v := range vals {
		if v > best {
			best = v
		}
	}
	ctx.SetVertex(best)
}

// suppressedMapRange demonstrates the pragma escape hatch: the map range
// is order-invariant (max with a total tiebreak), and the reason is
// recorded where the replay auditor will look for it.
func suppressedMapRange(ctx core.VertexView) {
	counts := map[uint64]int{}
	for k := 0; k < ctx.InDegree(); k++ {
		counts[ctx.InEdgeVal(k)]++
	}
	best := uint64(0)
	//ndlint:ignore determinism order-invariant reduction: max over entries with a total tiebreak
	for label := range counts {
		if label > best {
			best = label
		}
	}
	ctx.SetVertex(best)
}
