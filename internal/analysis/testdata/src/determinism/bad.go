// Positive determinism fixtures: wall clocks, process-global randomness,
// and map iteration inside updates break record/replay.
package determinism

import (
	"core"
	"math/rand"
	"time"
)

var start = time.Unix(0, 0)

func BadClock(ctx core.VertexView) {
	if time.Now().Unix() > 0 { // want `wall clock \(time.Now\)`
		ctx.SetVertex(1)
	}
	if time.Since(start) > time.Second { // want `wall clock \(time.Since\)`
		ctx.SetVertex(2)
	}
}

func BadRand(ctx core.VertexView) {
	ctx.SetVertex(uint64(rand.Int63())) // want `math/rand`
}

func BadMapRange(ctx core.VertexView) {
	counts := map[uint64]int{}
	for k := 0; k < ctx.InDegree(); k++ {
		counts[ctx.InEdgeVal(k)]++
	}
	best := uint64(0)
	for label, c := range counts { // want `ranges over a map`
		if c > 1 && label > best {
			best = label
		}
	}
	ctx.SetVertex(best)
}
