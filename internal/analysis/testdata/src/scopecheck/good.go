// Negative scopecheck fixtures: in-scope updates and non-update functions
// must produce no diagnostics.
package scopecheck

import "core"

// cleanUpdate is a PageRank-shaped update: locals, view calls, and a
// local map are all within the pull-mode scope.
func cleanUpdate(ctx core.VertexView) {
	sum := uint64(0)
	for k := 0; k < ctx.InDegree(); k++ {
		sum += ctx.InEdgeVal(k)
	}
	seen := map[uint64]int{}
	seen[sum]++
	ctx.SetVertex(sum)
	for k := 0; k < ctx.OutDegree(); k++ {
		ctx.SetOutEdgeVal(k, sum)
	}
	ctx.ScheduleSelf()
}

// readsConfig reads (but never writes) receiver fields — configuration
// reads are fine.
type configured struct {
	epsilon uint64
}

func (c *configured) Update(ctx core.VertexView) {
	if ctx.Vertex() > c.epsilon {
		ctx.SetVertex(c.epsilon)
	}
}

// notAnUpdate takes a second parameter, so it follows a different engine
// contract (cf. the autonomous scheduler) and is exempt from the pull-mode
// scope rule.
func notAnUpdate(ctx core.VertexView, shared []uint64) {
	shared[ctx.V()] = ctx.Vertex()
}
