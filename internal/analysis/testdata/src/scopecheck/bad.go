// Positive scopecheck fixtures: every construct here breaks the Section II
// scope rule and must be flagged.
package scopecheck

import (
	"core"
	"sync"
	"sync/atomic"
)

var global uint64

var cache = map[uint32]uint64{}

type Algo struct {
	counter uint64
	mu      sync.Mutex
}

func (a *Algo) Update(ctx core.VertexView) {
	global = ctx.Vertex()           // want `package-level variable "global"`
	a.counter++                     // want `receiver state`
	atomic.AddUint64(&a.counter, 1) // want `sync/atomic`
	a.mu.Lock()                     // want `calls into sync`
	ctx.SetVertex(ctx.Vertex() + 1)
	a.mu.Unlock() // want `calls into sync`
}

func MakeUpdate() func(core.VertexView) {
	total := uint64(0)
	return func(ctx core.VertexView) {
		total += ctx.Vertex() // want `captured variable "total"`
		ctx.SetVertex(total)
	}
}

func BadCache(ctx core.VertexView) {
	cache[ctx.V()] = ctx.Vertex() // want `package-level variable "cache"`
	delete(cache, ctx.V())        // want `package-level variable "cache"`
}

func BadConcurrency(results chan uint64) func(core.VertexView) {
	return func(ctx core.VertexView) {
		go ctx.Yield()          // want `spawns a goroutine`
		results <- ctx.Vertex() // want `sends on a channel`
		<-results               // want `receives from a channel`
	}
}
