// Package admitcheck exercises the admission-gate verifier. The
// Properties/Condition types replicate internal/eligibility's — the pass
// extracts declarations by field name, so the fixture stays
// self-contained.
package admitcheck

// Condition mirrors eligibility.Condition.
type Condition int

const (
	Absolute Condition = iota
	Approximate
)

// Properties mirrors eligibility.Properties.
type Properties struct {
	Name                   string
	ConvergesSynchronously bool
	ConvergesDetAsync      bool
	Monotonic              bool
	Convergence            Condition
}
