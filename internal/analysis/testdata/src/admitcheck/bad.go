// Negative admitcheck fixtures: an ε-admissible algorithm without a
// residual metric, and one whose metric violates the estimator's laws.
package admitcheck

import (
	"core"
	"math"
)

// BadNoRD is ε-stop admissible (Theorem 1, approximate convergence) but
// declares no ResidualDelta — the stopping rule would have nothing to
// window.
type BadNoRD struct{}

func (*BadNoRD) Properties() Properties {
	return Properties{
		Name:                   "badnord",
		ConvergesSynchronously: true,
		ConvergesDetAsync:      true,
		Convergence:            Approximate,
	}
}

func (*BadNoRD) Update(ctx core.VertexView) { // want `declares no ResidualDelta`
	sum := uint64(0)
	for k := 0; k < ctx.InDegree(); k++ {
		sum += ctx.InEdgeVal(k)
	}
	ctx.SetVertex(sum)
	for k := 0; k < ctx.OutDegree(); k++ {
		ctx.SetOutEdgeVal(k, sum)
	}
}

// BadRD supplies a SIGNED residual: negative on decreasing moves, which
// would drag the windowed mean below ε while values still churn.
type BadRD struct{}

func (*BadRD) Properties() Properties {
	return Properties{
		Name:                   "badrd",
		ConvergesSynchronously: true,
		ConvergesDetAsync:      true,
		Convergence:            Approximate,
	}
}

func (*BadRD) Update(ctx core.VertexView) {
	sum := uint64(0)
	for k := 0; k < ctx.InDegree(); k++ {
		sum += ctx.InEdgeVal(k)
	}
	ctx.SetVertex(sum)
	for k := 0; k < ctx.OutDegree(); k++ {
		ctx.SetOutEdgeVal(k, sum)
	}
}

func (*BadRD) ResidualDelta(old, new uint64) float64 { // want `violates the residual metric laws`
	return math.Float64frombits(new) - math.Float64frombits(old)
}
