// Positive admitcheck fixtures: consistent gates and a law-clean
// residual metric are silent.
package admitcheck

import (
	"core"
	"math"
)

// GoodEps is the PageRank shape: read-write conflicts only, synchronous
// convergence, approximate contract — Theorem 1, ε-stop admissible —
// and it supplies the residual metric the ε-aware stopping rule windows.
type GoodEps struct{}

func (*GoodEps) Properties() Properties {
	return Properties{
		Name:                   "goodeps",
		ConvergesSynchronously: true,
		ConvergesDetAsync:      true,
		Convergence:            Approximate,
	}
}

func (*GoodEps) Update(ctx core.VertexView) {
	sum := uint64(0)
	for k := 0; k < ctx.InDegree(); k++ {
		sum += ctx.InEdgeVal(k)
	}
	ctx.SetVertex(sum)
	for k := 0; k < ctx.OutDegree(); k++ {
		ctx.SetOutEdgeVal(k, sum)
	}
}

// ResidualDelta is the absolute value movement per commit: zero exactly
// on unchanged values, non-negative everywhere.
func (*GoodEps) ResidualDelta(old, new uint64) float64 {
	return math.Abs(math.Float64frombits(new) - math.Float64frombits(old))
}

// GoodMono is the WCC shape: write-write conflicts, monotone,
// det-async convergent — Theorem 2, which is NOT ε-stop admissible, so
// no residual metric is required.
type GoodMono struct{}

func (*GoodMono) Properties() Properties {
	return Properties{
		Name:                   "goodmono",
		ConvergesSynchronously: true,
		ConvergesDetAsync:      true,
		Monotonic:              true,
		Convergence:            Absolute,
	}
}

func (*GoodMono) Update(ctx core.VertexView) {
	min := ctx.Vertex()
	for k := 0; k < ctx.InDegree(); k++ {
		if w := ctx.InEdgeVal(k); w < min {
			min = w
		}
	}
	ctx.SetVertex(min)
	for k := 0; k < ctx.InDegree(); k++ {
		ctx.SetInEdgeVal(k, min)
	}
	for k := 0; k < ctx.OutDegree(); k++ {
		ctx.SetOutEdgeVal(k, min)
	}
}
