// Negative propcheck fixtures: a mis-declared Monotonic is refuted with
// a concrete counter-example.
package propcheck

import "core"

// BadSum declares Monotonic but its merge is addition — commutative and
// associative, yet not idempotent: re-applying a word moves the
// accumulator again, so a write-write race does not self-correct and the
// Theorem 2 premise is false.
type BadSum struct{}

func (*BadSum) Properties() Properties {
	return Properties{
		Name:                   "badsum",
		ConvergesSynchronously: true,
		ConvergesDetAsync:      true,
		Monotonic:              true,
		Convergence:            Absolute,
	}
}

func (*BadSum) Update(ctx core.VertexView) { // want `declares Monotonic but its merge violates idempotence`
	sum := uint64(0)
	for k := 0; k < ctx.InDegree(); k++ {
		sum += ctx.InEdgeVal(k)
	}
	ctx.SetVertex(sum)
	for k := 0; k < ctx.OutDegree(); k++ {
		ctx.SetOutEdgeVal(k, sum)
	}
}

// BadDiverge declares Monotonic with in- and out-gathers that compute
// DIFFERENT merges (min vs max) — the sites disagree pointwise, the
// extraction is poisoned, and only the pass result records why. No
// diagnostic: silence is "not disproven", not "verified".
type BadDiverge struct{}

func (*BadDiverge) Properties() Properties {
	return Properties{
		Name:                   "baddiverge",
		ConvergesSynchronously: true,
		ConvergesDetAsync:      true,
		Monotonic:              true,
		Convergence:            Absolute,
	}
}

func (*BadDiverge) Update(ctx core.VertexView) {
	best := ctx.Vertex()
	for k := 0; k < ctx.InDegree(); k++ {
		if w := ctx.InEdgeVal(k); w < best {
			best = w
		}
	}
	for k := 0; k < ctx.OutDegree(); k++ {
		if w := ctx.OutEdgeVal(k); w > best {
			best = w
		}
	}
	ctx.SetVertex(best)
}
