// Positive propcheck fixtures: correctly declared merges are silent.
package propcheck

import "core"

// GoodMin declares Monotonic and gathers with min over both edge
// directions — two sites, one semilattice merge, laws hold.
type GoodMin struct{}

func (*GoodMin) Properties() Properties {
	return Properties{
		Name:                   "goodmin",
		ConvergesSynchronously: true,
		ConvergesDetAsync:      true,
		Monotonic:              true,
		Convergence:            Absolute,
	}
}

func (*GoodMin) Update(ctx core.VertexView) {
	min := ctx.Vertex()
	for k := 0; k < ctx.InDegree(); k++ {
		if w := ctx.InEdgeVal(k); w < min {
			min = w
		}
	}
	for k := 0; k < ctx.OutDegree(); k++ {
		if w := ctx.OutEdgeVal(k); w < min {
			min = w
		}
	}
	ctx.SetVertex(min)
	for k := 0; k < ctx.OutDegree(); k++ {
		ctx.SetOutEdgeVal(k, min)
	}
}

// GoodSum accumulates — NOT a semilattice merge, but also not declared
// Monotonic, so the refuted idempotence law is recorded in the pass
// result without a diagnostic (the PageRank/SpMV situation).
type GoodSum struct{}

func (*GoodSum) Properties() Properties {
	return Properties{
		Name:                   "goodsum",
		ConvergesSynchronously: true,
		ConvergesDetAsync:      true,
		Convergence:            Approximate,
	}
}

func (*GoodSum) Update(ctx core.VertexView) {
	sum := uint64(0)
	for k := 0; k < ctx.InDegree(); k++ {
		sum += ctx.InEdgeVal(k)
	}
	ctx.SetVertex(sum)
	for k := 0; k < ctx.OutDegree(); k++ {
		ctx.SetOutEdgeVal(k, sum)
	}
}
