package analysis

// kernelcheck covers the surface PR 7 added without static checks: the
// paired-direction algorithms.Kernel literals behind the hybrid engine.
// One (Message, Better) pair serves both push and pull, so the direction
// switch is sound only if Message is pure (same offer whichever side
// computes it) and Better is a strict improvement test — irreflexive, or
// the run never quiesces; antisymmetric, or two workers can improve each
// other's value forever. The pass finds every Kernel composite literal,
// compiles Message/Better with the evaluator, and checks the order laws
// bounded-exhaustively; declared capability flags (EdgeIndexed,
// FirstOfferWins) are validated against what the code actually supports.
//
// Suppression: beyond the generic same-line/line-above pragma filter, a
// //ndlint:ignore kernelcheck <reason> pragma on the *constructor* — its
// declaration line, the line above, or its doc comment — silences the
// pass for every kernel built inside it (kernels are values built in
// constructors, so the natural place to annotate is the constructor, not
// the field the diagnostic lands on).

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"math"
)

// constant extraction helpers tolerant of nil (non-constant) values.
func constantString(cv constant.Value) string {
	if cv != nil && cv.Kind() == constant.String {
		return constant.StringVal(cv)
	}
	return ""
}

func constantBool(cv constant.Value) bool {
	return cv != nil && cv.Kind() == constant.Bool && constant.BoolVal(cv)
}

func constantUint(cv constant.Value) (uint64, bool) {
	if cv == nil || cv.Kind() != constant.Int {
		return 0, false
	}
	return constant.Uint64Val(cv)
}

// KernelCheck is the kernel-pair verification pass.
var KernelCheck = &Analyzer{
	Name: "kernelcheck",
	Doc: "verify hybrid-engine kernel pairs: Better is a strict partial " +
		"order (irreflexive, antisymmetric, transitive, total modulo float " +
		"equivalence), Message is pure, and EdgeIndexed/FirstOfferWins " +
		"flags match the code",
	Run: runKernelCheck,
}

// KernelFacts is what the pass established about one kernel literal —
// the kernelcheck slice of the eligibility certificate.
type KernelFacts struct {
	// MessageCompiled / BetterCompiled report evaluator coverage; laws
	// below are meaningful only when BetterCompiled.
	MessageCompiled bool `json:"message_compiled"`
	BetterCompiled  bool `json:"better_compiled"`
	// The order laws of Better over the word domain.
	BetterIrreflexive   bool `json:"better_irreflexive"`
	BetterAntisymmetric bool `json:"better_antisymmetric"`
	BetterTransitive    bool `json:"better_transitive"`
	// BetterTotal is totality modulo equivalence: for distinct words that
	// are not float-equal (and not NaN), one direction must improve.
	BetterTotal bool `json:"better_total"`
	// DirectionConsistent: push and pull compute identical offers and
	// accept them identically — Message compiled (hence pure: the
	// evaluator's fragment is effect-free) and Better is a verified
	// strict order.
	DirectionConsistent bool `json:"direction_consistent"`
	// EdgeIndexed flag versus whether Message's code reads its edge
	// parameter.
	EdgeIndexedDeclared bool `json:"edge_indexed_declared"`
	EdgeIndexedUsed     bool `json:"edge_indexed_used"`
	// FirstOfferWins flag and its checked obligation
	// ∀w ¬Better(Unreached, w): the unreached word never beats anything,
	// so a first offer is never displaced by the initial state. The
	// check runs only when the Unreached expression is evaluable
	// (FirstOfferWinsChecked).
	FirstOfferWinsDeclared bool   `json:"first_offer_wins_declared"`
	FirstOfferWinsChecked  bool   `json:"first_offer_wins_checked"`
	FirstOfferWinsSound    bool   `json:"first_offer_wins_sound"`
	Unreached              uint64 `json:"unreached,omitempty"`
	// Counter is the first law counter-example, Note the reason a
	// function did not compile.
	Counter string `json:"counter,omitempty"`
	Note    string `json:"note,omitempty"`
}

// KernelReport is kernelcheck's per-kernel-literal result.
type KernelReport struct {
	// Name is the kernel's Name field when constant ("wcc", "bfs", …).
	Name string
	// Constructor is the enclosing function's name.
	Constructor string
	Facts       KernelFacts
	// Hash is the FNV-1a source identity of the composite literal.
	Hash string
	// Suppressed records a constructor-level pragma hit (the report is
	// still produced for certificates; only diagnostics are muted).
	Suppressed bool
}

func runKernelCheck(pass *Pass) (any, error) {
	ev := newEvaluator(pass)
	pragmas, _ := parsePragmas(&Package{Fset: pass.Fset, Files: pass.Files})
	var reports []KernelReport

	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		var ctor *ast.FuncDecl
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok {
				ctor = fd
				return true
			}
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(lit)
			if t == nil || !isKernelType(t) {
				return true
			}
			r := analyzeKernel(ev, lit)
			if ctor != nil {
				r.Constructor = ctor.Name.Name
				r.Suppressed = ctorPragmaCovers(pass, pragmas, ctor, pass.Analyzer.Name)
			}
			reports = append(reports, r)
			if !r.Suppressed {
				reportKernel(pass, lit, r)
			}
			return true
		})
	}
	return reports, nil
}

// isKernelType matches the algorithms.Kernel shape structurally: a named
// struct type called Kernel with Message func(uint64, uint32) uint64 and
// Better func(uint64, uint64) bool fields. Structural matching keeps the
// pass usable on fixture replicas, exactly like IsVertexView.
func isKernelType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Name() != "Kernel" {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	var haveMessage, haveBetter bool
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		sig, ok := f.Type().(*types.Signature)
		if !ok {
			continue
		}
		switch f.Name() {
		case "Message":
			haveMessage = sigShape(sig, []types.BasicKind{types.Uint64, types.Uint32}, types.Uint64)
		case "Better":
			haveBetter = sigShape(sig, []types.BasicKind{types.Uint64, types.Uint64}, types.Bool)
		}
	}
	return haveMessage && haveBetter
}

func sigShape(sig *types.Signature, params []types.BasicKind, result types.BasicKind) bool {
	if sig.Params().Len() != len(params) || sig.Results().Len() != 1 {
		return false
	}
	for i, want := range params {
		b, ok := sig.Params().At(i).Type().Underlying().(*types.Basic)
		if !ok || b.Kind() != want {
			return false
		}
	}
	b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	return ok && b.Kind() == result
}

// kernelLit is the parsed composite literal.
type kernelLit struct {
	name           string
	message        *ast.FuncLit
	better         *ast.FuncLit
	edgeIndexed    bool
	firstOfferWins bool
	undirected     bool
	// unreachedExpr is the Unreached field value — not necessarily a
	// compile-time constant (the builtin BFS kernel uses
	// edgedata.FromFloat64(math.Inf(1))), so it is evaluated, not
	// constant-folded.
	unreachedExpr ast.Expr
}

func parseKernelLit(pass *Pass, lit *ast.CompositeLit) kernelLit {
	var k kernelLit
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		cv := pass.Info.Types[kv.Value].Value
		switch key.Name {
		case "Name":
			if cv != nil {
				k.name = constantString(cv)
			}
		case "Message":
			if fl, ok := kv.Value.(*ast.FuncLit); ok {
				k.message = fl
			}
		case "Better":
			if fl, ok := kv.Value.(*ast.FuncLit); ok {
				k.better = fl
			}
		case "EdgeIndexed":
			k.edgeIndexed = constantBool(cv)
		case "FirstOfferWins":
			k.firstOfferWins = constantBool(cv)
		case "Undirected":
			k.undirected = constantBool(cv)
		case "Unreached":
			k.unreachedExpr = kv.Value
		}
	}
	return k
}

func analyzeKernel(ev *evaluator, lit *ast.CompositeLit) KernelReport {
	pass := ev.pass
	k := parseKernelLit(pass, lit)
	r := KernelReport{Name: k.name, Hash: srcHash(pass.Fset, lit)}
	facts := &r.Facts
	facts.EdgeIndexedDeclared = k.edgeIndexed
	facts.FirstOfferWinsDeclared = k.firstOfferWins

	// Evaluate the Unreached word (a closed expression, not necessarily
	// a constant).
	haveUnreached := false
	var unreached uint64
	if k.unreachedExpr != nil {
		if c, err := ev.compileExprWith(nil, nil, k.unreachedExpr); err == nil && len(c.frees) == 0 {
			if v, err := c.fn(nil, nil); err == nil && v.k == kindUint {
				unreached = v.u
				haveUnreached = true
				facts.Unreached = v.u
			}
		}
	}

	// Message: compile (purity by construction) and record whether the
	// body reads the edge-index parameter.
	if k.message == nil {
		facts.Note = "Message is not a function literal"
	} else {
		params := litParams(pass, k.message)
		if _, err := ev.compileFunc(params, k.message.Body, k.message); err == nil {
			facts.MessageCompiled = true
		} else if facts.Note == "" {
			facts.Note = fmt.Sprintf("Message: %v", err)
		}
		if len(params) > 1 && params[1] != nil {
			facts.EdgeIndexedUsed = bodyUsesObject(pass, k.message.Body, params[1])
		}
	}

	// Better: compile and sweep the order laws over the word domain.
	if k.better == nil {
		if facts.Note == "" {
			facts.Note = "Better is not a function literal"
		}
	} else {
		c, err := ev.compileFunc(litParams(pass, k.better), k.better.Body, k.better)
		if err != nil {
			if facts.Note == "" {
				facts.Note = fmt.Sprintf("Better: %v", err)
			}
		} else {
			facts.BetterCompiled = true
			checkBetterLaws(facts, c)
			if k.firstOfferWins && haveUnreached {
				facts.FirstOfferWinsChecked = true
				checkFirstOfferWins(facts, c, unreached)
			} else if k.firstOfferWins && facts.Note == "" {
				facts.Note = "FirstOfferWins declared but the Unreached expression is not evaluable"
			}
		}
	}

	facts.DirectionConsistent = facts.MessageCompiled && facts.BetterCompiled &&
		facts.BetterIrreflexive && facts.BetterAntisymmetric && facts.BetterTransitive
	return r
}

// reportKernel emits the diagnostics for one analyzed kernel.
func reportKernel(pass *Pass, lit *ast.CompositeLit, r KernelReport) {
	f := r.Facts
	name := r.Name
	if name == "" {
		name = "kernel"
	}
	pos := lit.Pos()
	if f.BetterCompiled {
		if !f.BetterIrreflexive {
			pass.reportCounter(pos, f.Counter,
				"kernel %q: Better is not irreflexive (%s) — a vertex improves on its own value, so the computation never quiesces", name, f.Counter)
		}
		if !f.BetterAntisymmetric {
			pass.reportCounter(pos, f.Counter,
				"kernel %q: Better is not antisymmetric (%s) — two values each improve on the other, so push and pull can disagree on the fixed point", name, f.Counter)
		}
		if !f.BetterTransitive {
			pass.reportCounter(pos, f.Counter,
				"kernel %q: Better is not transitive (%s) — improvement chains can cycle", name, f.Counter)
		}
		if !f.BetterTotal {
			pass.reportCounter(pos, f.Counter,
				"kernel %q: Better is not total (%s) — some distinct value pairs are incomparable, so convergence depends on arrival order", name, f.Counter)
		}
		if f.FirstOfferWinsDeclared && f.FirstOfferWinsChecked && !f.FirstOfferWinsSound {
			pass.reportCounter(pos, f.Counter,
				"kernel %q declares FirstOfferWins but %s — the unreached word displaces accepted offers, breaking the level-synchronous pull optimizations", name, f.Counter)
		}
	}
	if f.MessageCompiled || f.BetterCompiled {
		if f.EdgeIndexedDeclared && !f.EdgeIndexedUsed {
			pass.Reportf(pos,
				"kernel %q declares EdgeIndexed but Message ignores its edge parameter — drop the flag so pull sweeps skip streaming the in-edge-index array", name)
		}
		if !f.EdgeIndexedDeclared && f.EdgeIndexedUsed {
			pass.Reportf(pos,
				"kernel %q reads its edge parameter in Message but does not declare EdgeIndexed — executors may pass any edge index when the flag is unset, so offers would be computed from the wrong edge", name)
		}
	}
}

// checkBetterLaws sweeps irreflexivity, antisymmetry, transitivity, and
// totality-modulo-equivalence over the word domain, under every free
// assignment.
func checkBetterLaws(f *KernelFacts, c compiled) {
	f.BetterIrreflexive = true
	f.BetterAntisymmetric = true
	f.BetterTransitive = true
	f.BetterTotal = true
	words := wordDomain()
	for _, fr := range freeAssignments(c.frees) {
		better := func(a, b uint64) (bool, bool) {
			v, err := c.fn([]val{vUint(a, 64), vUint(b, 64)}, fr)
			if err != nil || v.k != kindBool {
				return false, false
			}
			return v.b, true
		}
		for _, w1 := range words {
			if b, ok := better(w1, w1); ok && b && f.BetterIrreflexive {
				f.BetterIrreflexive = false
				if f.Counter == "" {
					f.Counter = fmt.Sprintf("Better(%#x, %#x) = true", w1, w1)
				}
			}
			for _, w2 := range words {
				b12, ok1 := better(w1, w2)
				b21, ok2 := better(w2, w1)
				if !ok1 || !ok2 {
					continue
				}
				if w1 != w2 && b12 && b21 && f.BetterAntisymmetric {
					f.BetterAntisymmetric = false
					if f.Counter == "" {
						f.Counter = fmt.Sprintf("Better(%#x, %#x) and Better(%#x, %#x) are both true", w1, w2, w2, w1)
					}
				}
				if w1 != w2 && !b12 && !b21 && !floatEquivalent(w1, w2) && f.BetterTotal {
					f.BetterTotal = false
					if f.Counter == "" {
						f.Counter = fmt.Sprintf("neither Better(%#x, %#x) nor Better(%#x, %#x)", w1, w2, w2, w1)
					}
				}
				if !b12 {
					continue
				}
				for _, w3 := range words {
					b23, ok3 := better(w2, w3)
					b13, ok4 := better(w1, w3)
					if ok3 && ok4 && b23 && !b13 && f.BetterTransitive {
						f.BetterTransitive = false
						if f.Counter == "" {
							f.Counter = fmt.Sprintf("Better(%#x,%#x) and Better(%#x,%#x) but not Better(%#x,%#x)", w1, w2, w2, w3, w1, w3)
						}
					}
				}
			}
		}
	}
}

// checkFirstOfferWins verifies ∀w ¬Better(Unreached, w): the initial
// word is a bottom element that never displaces an offer.
func checkFirstOfferWins(f *KernelFacts, c compiled, unreached uint64) {
	f.FirstOfferWinsSound = true
	for _, fr := range freeAssignments(c.frees) {
		for _, w := range wordDomain() {
			v, err := c.fn([]val{vUint(unreached, 64), vUint(w, 64)}, fr)
			if err != nil || v.k != kindBool {
				continue
			}
			if v.b && f.FirstOfferWinsSound {
				f.FirstOfferWinsSound = false
				if f.Counter == "" {
					f.Counter = fmt.Sprintf("Better(Unreached=%#x, %#x) = true", unreached, w)
				}
			}
		}
	}
}

// floatEquivalent excuses totality for word pairs indistinguishable as
// float64 payloads: equal decodes (0 vs −0) or NaN on either side.
// Pure coverage loss — it can mask a missing comparison on such pairs,
// never produce a false diagnostic.
func floatEquivalent(w1, w2 uint64) bool {
	f1, f2 := math.Float64frombits(w1), math.Float64frombits(w2)
	return f1 == f2 || math.IsNaN(f1) || math.IsNaN(f2)
}

// litParams collects a function literal's parameter objects in slot
// order (nil for blank/unnamed parameters).
func litParams(pass *Pass, lit *ast.FuncLit) []types.Object {
	var out []types.Object
	for _, field := range lit.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				out = append(out, nil)
				continue
			}
			out = append(out, pass.Info.Defs[name])
		}
	}
	return out
}

func bodyUsesObject(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// ctorPragmaCovers checks for a //ndlint:ignore <pass> <reason> pragma
// attached to the constructor: on its declaration line, the line above,
// or any line of its doc comment — the kernel-path suppression fix.
func ctorPragmaCovers(pass *Pass, pragmas map[string]map[int][]pragma, ctor *ast.FuncDecl, name string) bool {
	declPos := pass.Fset.Position(ctor.Pos())
	m := pragmas[declPos.Filename]
	if m == nil {
		return false
	}
	lines := []int{declPos.Line, declPos.Line - 1}
	if ctor.Doc != nil {
		start := pass.Fset.Position(ctor.Doc.Pos()).Line
		end := pass.Fset.Position(ctor.Doc.End()).Line
		for l := start; l <= end; l++ {
			lines = append(lines, l)
		}
	}
	for _, l := range lines {
		for _, p := range m[l] {
			if p.pass == name || p.pass == "all" {
				return true
			}
		}
	}
	return false
}
