package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"ndgraph/internal/eligibility"
)

func TestScopeCheckFixtures(t *testing.T) {
	RunFixture(t, ScopeCheck, "scopecheck")
}

func TestDeterminismFixtures(t *testing.T) {
	RunFixture(t, Determinism, "determinism")
}

func TestAtomicityFixtures(t *testing.T) {
	RunFixture(t, Atomicity, "atomicity")
}

func TestConflictClassFixtures(t *testing.T) {
	results := RunFixture(t, ConflictClass, "conflictclass")
	reports, ok := results["conflictclass"].([]ClassReport)
	if !ok {
		t.Fatalf("conflictclass result has type %T", results["conflictclass"])
	}
	byRecv := map[string]ClassReport{}
	for _, r := range reports {
		if r.Recv != "" {
			byRecv[r.Recv] = r
		}
	}
	// Call-graph propagation: GoodPR's profile must union its helpers'.
	pr, ok := byRecv["GoodPR"]
	if !ok {
		t.Fatal("no report for GoodPR")
	}
	want := eligibility.StaticProfile{ReadsIn: true, WritesOut: true, WritesVertex: true}
	if pr.Profile != want {
		t.Errorf("GoodPR profile = %+v, want %+v", pr.Profile, want)
	}
	if pr.Verdict == nil || !pr.Verdict.Eligible || pr.Verdict.Theorem != 1 {
		t.Errorf("GoodPR verdict = %+v, want eligible Theorem 1", pr.Verdict)
	}
	wcc, ok := byRecv["GoodWCC"]
	if !ok {
		t.Fatal("no report for GoodWCC")
	}
	if got := wcc.Profile.Class(); got != "WW" {
		t.Errorf("GoodWCC class = %s, want WW", got)
	}
	if wcc.Verdict == nil || !wcc.Verdict.Eligible || wcc.Verdict.Theorem != 2 {
		t.Errorf("GoodWCC verdict = %+v, want eligible Theorem 2", wcc.Verdict)
	}
	if wcc.Props == nil || !wcc.Props.Monotonic || wcc.Props.Name != "goodwcc" {
		t.Errorf("GoodWCC extracted props = %+v", wcc.Props)
	}
}

// TestMalformedPragmaReported checks that a reason-less pragma does not
// suppress and is itself diagnosed.
func TestMalformedPragmaReported(t *testing.T) {
	const src = `package p

var x int

//ndlint:ignore scopecheck
func touch() {
	x = 1
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Path: "p", Fset: fset, Files: []*ast.File{f}}
	seed := []Diagnostic{{
		Pos:      fset.Position(f.Decls[1].Pos()),
		Category: "scopecheck",
		Message:  "writes package-level variable x",
	}}
	got := filterPragmas(pkg, seed)
	if len(got) != 2 {
		t.Fatalf("filterPragmas kept %d diagnostics, want 2 (original + malformed pragma): %v", len(got), got)
	}
	if got[0].Message != seed[0].Message {
		t.Errorf("reason-less pragma suppressed the diagnostic: %v", got)
	}
	if got[1].Category != "pragma" || !strings.Contains(got[1].Message, "malformed ndlint pragma") {
		t.Errorf("malformed pragma not reported: %v", got[1])
	}
}

// TestPragmaCoversWildcard checks the "all" pass wildcard and the
// line-above rule.
func TestPragmaCoversWildcard(t *testing.T) {
	pragmas := map[string]map[int][]pragma{
		"f.go": {10: {{pass: "all", reason: "r"}}},
	}
	for _, line := range []int{10, 11} {
		d := Diagnostic{Pos: token.Position{Filename: "f.go", Line: line}, Category: "determinism"}
		if !pragmaCovers(pragmas, d) {
			t.Errorf("line %d not covered by all-pragma on line 10", line)
		}
	}
	d := Diagnostic{Pos: token.Position{Filename: "f.go", Line: 12}, Category: "determinism"}
	if pragmaCovers(pragmas, d) {
		t.Error("line 12 covered by pragma on line 10")
	}
}
