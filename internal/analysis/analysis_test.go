package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ndgraph/internal/eligibility"
)

func TestScopeCheckFixtures(t *testing.T) {
	RunFixture(t, ScopeCheck, "scopecheck")
}

func TestDeterminismFixtures(t *testing.T) {
	RunFixture(t, Determinism, "determinism")
}

func TestAtomicityFixtures(t *testing.T) {
	RunFixture(t, Atomicity, "atomicity")
}

func TestConflictClassFixtures(t *testing.T) {
	results := RunFixture(t, ConflictClass, "conflictclass")
	reports, ok := results["conflictclass"].([]ClassReport)
	if !ok {
		t.Fatalf("conflictclass result has type %T", results["conflictclass"])
	}
	byRecv := map[string]ClassReport{}
	for _, r := range reports {
		if r.Recv != "" {
			byRecv[r.Recv] = r
		}
	}
	// Call-graph propagation: GoodPR's profile must union its helpers'.
	pr, ok := byRecv["GoodPR"]
	if !ok {
		t.Fatal("no report for GoodPR")
	}
	want := eligibility.StaticProfile{ReadsIn: true, WritesOut: true, WritesVertex: true}
	if pr.Profile != want {
		t.Errorf("GoodPR profile = %+v, want %+v", pr.Profile, want)
	}
	if pr.Verdict == nil || !pr.Verdict.Eligible || pr.Verdict.Theorem != 1 {
		t.Errorf("GoodPR verdict = %+v, want eligible Theorem 1", pr.Verdict)
	}
	wcc, ok := byRecv["GoodWCC"]
	if !ok {
		t.Fatal("no report for GoodWCC")
	}
	if got := wcc.Profile.Class(); got != "WW" {
		t.Errorf("GoodWCC class = %s, want WW", got)
	}
	if wcc.Verdict == nil || !wcc.Verdict.Eligible || wcc.Verdict.Theorem != 2 {
		t.Errorf("GoodWCC verdict = %+v, want eligible Theorem 2", wcc.Verdict)
	}
	if wcc.Props == nil || !wcc.Props.Monotonic || wcc.Props.Name != "goodwcc" {
		t.Errorf("GoodWCC extracted props = %+v", wcc.Props)
	}
}

// TestMalformedPragmaReported checks that a reason-less pragma does not
// suppress and is itself diagnosed.
func TestMalformedPragmaReported(t *testing.T) {
	const src = `package p

var x int

//ndlint:ignore scopecheck
func touch() {
	x = 1
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Path: "p", Fset: fset, Files: []*ast.File{f}}
	seed := []Diagnostic{{
		Pos:      fset.Position(f.Decls[1].Pos()),
		Category: "scopecheck",
		Message:  "writes package-level variable x",
	}}
	got := filterPragmas(pkg, seed)
	if len(got) != 2 {
		t.Fatalf("filterPragmas kept %d diagnostics, want 2 (original + malformed pragma): %v", len(got), got)
	}
	if got[0].Message != seed[0].Message {
		t.Errorf("reason-less pragma suppressed the diagnostic: %v", got)
	}
	if got[1].Category != "pragma" || !strings.Contains(got[1].Message, "malformed ndlint pragma") {
		t.Errorf("malformed pragma not reported: %v", got[1])
	}
}

// TestPragmaCoversWildcard checks the "all" pass wildcard and the
// line-above rule.
func TestPragmaCoversWildcard(t *testing.T) {
	pragmas := map[string]map[int][]pragma{
		"f.go": {10: {{pass: "all", reason: "r"}}},
	}
	for _, line := range []int{10, 11} {
		d := Diagnostic{Pos: token.Position{Filename: "f.go", Line: line}, Category: "determinism"}
		if !pragmaCovers(pragmas, d) {
			t.Errorf("line %d not covered by all-pragma on line 10", line)
		}
	}
	d := Diagnostic{Pos: token.Position{Filename: "f.go", Line: 12}, Category: "determinism"}
	if pragmaCovers(pragmas, d) {
		t.Error("line 12 covered by pragma on line 10")
	}
}

func TestPropCheckFixtures(t *testing.T) {
	results := RunFixture(t, PropCheck, "propcheck")
	byRecv := map[string]PropReport{}
	for _, r := range results["propcheck"].([]PropReport) {
		byRecv[r.Recv] = r
	}

	min, ok := byRecv["GoodMin"]
	if !ok {
		t.Fatal("no report for GoodMin")
	}
	m := min.Merge
	if !m.Extracted || m.Sites != 2 || m.AccKind != "uint64" {
		t.Errorf("GoodMin merge = %+v, want 2 extracted uint64 sites", m)
	}
	if !m.SemilatticeVerified || m.Counter != "" {
		t.Errorf("GoodMin semilattice not verified: %+v", m)
	}
	if !strings.HasPrefix(min.Hash, "fnv1a:") {
		t.Errorf("GoodMin hash = %q, want fnv1a: prefix", min.Hash)
	}

	// GoodSum's idempotence is refuted but it never claimed Monotonic, so
	// the refutation lives only in the pass result (no // want above).
	sum := byRecv["GoodSum"].Merge
	if !sum.Extracted || sum.Idempotent || sum.SemilatticeVerified {
		t.Errorf("GoodSum merge = %+v, want extracted with idempotence refuted", sum)
	}
	if !strings.Contains(sum.Counter, "idempotence") {
		t.Errorf("GoodSum counter = %q, want an idempotence counter-example", sum.Counter)
	}

	// BadSum's diagnostic (asserted by the want annotation) must carry the
	// same concrete counter-example in the report.
	bad := byRecv["BadSum"].Merge
	if bad.Counter == "" {
		t.Error("BadSum produced no counter-example")
	}

	// Disagreeing sites poison extraction rather than verifying anything.
	div := byRecv["BadDiverge"].Merge
	if div.Extracted || !strings.Contains(div.Note, "disagree") {
		t.Errorf("BadDiverge merge = %+v, want unextracted with a disagreement note", div)
	}
}

func TestKernelCheckFixtures(t *testing.T) {
	results := RunFixture(t, KernelCheck, "kernelcheck")
	byName := map[string]KernelReport{}
	for _, r := range results["kernelcheck"].([]KernelReport) {
		byName[r.Name] = r
	}

	min, ok := byName["goodmin"]
	if !ok {
		t.Fatal("no report for goodmin")
	}
	f := min.Facts
	if !f.DirectionConsistent || !f.BetterIrreflexive || !f.BetterAntisymmetric ||
		!f.BetterTransitive || !f.BetterTotal {
		t.Errorf("goodmin facts = %+v, want a fully verified strict order", f)
	}
	if min.Constructor != "GoodMin" {
		t.Errorf("goodmin constructor = %q, want GoodMin", min.Constructor)
	}

	fow := byName["goodfow"].Facts
	if !fow.FirstOfferWinsChecked || !fow.FirstOfferWinsSound || fow.Unreached != ^uint64(0) {
		t.Errorf("goodfow facts = %+v, want checked+sound FirstOfferWins with max unreached", fow)
	}

	edge := byName["goodedge"].Facts
	if !edge.EdgeIndexedDeclared || !edge.EdgeIndexedUsed {
		t.Errorf("goodedge facts = %+v, want EdgeIndexed declared and used", edge)
	}

	neq := byName["badneq"].Facts
	if neq.BetterAntisymmetric || neq.BetterTransitive || neq.DirectionConsistent {
		t.Errorf("badneq facts = %+v, want antisymmetry and transitivity refuted", neq)
	}
	if neq.Counter == "" {
		t.Error("badneq produced no counter-example")
	}
}

func TestAdmitCheckFixtures(t *testing.T) {
	results := RunFixture(t, AdmitCheck, "admitcheck")
	byRecv := map[string]AdmitReport{}
	for _, r := range results["admitcheck"].([]AdmitReport) {
		byRecv[r.Recv] = r
	}

	eps, ok := byRecv["GoodEps"]
	if !ok {
		t.Fatal("no report for GoodEps")
	}
	if eps.Theorem != 1 || !eps.NoSyncOK || !eps.EpsilonStopOK {
		t.Errorf("GoodEps admission = %+v, want Theorem 1 with both gates open", eps)
	}
	if !eps.HasResidualDelta || !eps.ResidualDeltaChecked || !eps.ResidualDeltaOK {
		t.Errorf("GoodEps residual metric = %+v, want declared+checked+law-clean", eps)
	}

	mono := byRecv["GoodMono"]
	if mono.Theorem != 2 || !mono.NoSyncOK || mono.EpsilonStopOK {
		t.Errorf("GoodMono admission = %+v, want Theorem 2, no-sync only", mono)
	}

	nord := byRecv["BadNoRD"]
	if !nord.EpsilonStopOK || nord.HasResidualDelta {
		t.Errorf("BadNoRD = %+v, want ε-admissible without a metric", nord)
	}

	badrd := byRecv["BadRD"]
	if !badrd.ResidualDeltaChecked || badrd.ResidualDeltaOK || badrd.Counter == "" {
		t.Errorf("BadRD = %+v, want the metric laws refuted with a counter-example", badrd)
	}
}

// TestKernelPragmaSuppression covers the constructor-level kernelcheck
// pragma (the PR's bug fix: the pragma used to have no effect on the
// kernel path) and the malformed-pragma rule on that same path. Asserted
// directly rather than via // want: the malformed pragma's diagnostic
// lands on the pragma comment's own line, where no annotation can sit.
func TestKernelPragmaSuppression(t *testing.T) {
	loader := newFixtureLoader(t, filepath.Join("testdata", "src"))
	pkg := loader.load("kernelpragma")
	diags, results, err := RunAnalyzers(pkg, []*Analyzer{KernelCheck})
	if err != nil {
		t.Fatal(err)
	}

	byName := map[string]KernelReport{}
	for _, r := range results["kernelcheck"].([]KernelReport) {
		byName[r.Name] = r
	}
	waived, ok := byName["waived"]
	if !ok {
		t.Fatal("suppressed kernel produced no report — certificates would lose it")
	}
	if !waived.Suppressed || waived.Facts.BetterAntisymmetric {
		t.Errorf("waived report = %+v, want Suppressed with the law still refuted", waived)
	}
	if unwaived := byName["unwaived"]; unwaived.Suppressed {
		t.Error("reason-less pragma suppressed the unwaived kernel")
	}

	var kernelDiags, pragmaDiags int
	for _, d := range diags {
		switch d.Category {
		case "kernelcheck":
			kernelDiags++
			if !strings.Contains(d.Message, `"unwaived"`) {
				t.Errorf("kernelcheck diagnostic escaped the constructor pragma: %s", d)
			}
		case "pragma":
			pragmaDiags++
		}
	}
	if kernelDiags == 0 {
		t.Error("reason-less pragma silenced the kernelcheck diagnostics")
	}
	if pragmaDiags != 1 {
		t.Errorf("malformed pragma reported %d times, want 1", pragmaDiags)
	}
}

// TestCertificateStaleness mutates a fixture at the token level and
// asserts the re-derived certificate hash moves — the property that
// forces re-analysis when certified source changes.
func TestCertificateStaleness(t *testing.T) {
	tmp := t.TempDir()
	root := filepath.Join(tmp, "src")
	for _, dir := range []string{"core", "propcheck"} {
		src := filepath.Join("testdata", "src", dir)
		dst := filepath.Join(root, dir)
		if err := os.MkdirAll(dst, 0o777); err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(src, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o666); err != nil {
				t.Fatal(err)
			}
		}
	}

	certOf := func(loaderRoot string) *eligibility.Certificate {
		pkg := newFixtureLoader(t, loaderRoot).load("propcheck")
		certs, _, err := Certificates(pkg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := CertificateFor(certs, "update", "goodsum")
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	before := certOf(root)

	// Token-level, semantics-preserving mutation of GoodSum's update.
	goodPath := filepath.Join(root, "propcheck", "good.go")
	data, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(data), "sum := uint64(0)", "sum := uint64(0x0)", 1)
	if mutated == string(data) {
		t.Fatal("mutation found nothing to replace")
	}
	if err := os.WriteFile(goodPath, []byte(mutated), 0o666); err != nil {
		t.Fatal(err)
	}
	after := certOf(root)

	if before.SourceHash == after.SourceHash {
		t.Fatalf("hash %s unchanged across a token-level edit", before.SourceHash)
	}
	if !before.Stale(after.SourceHash) {
		t.Error("certificate does not report itself stale against the new hash")
	}
	if before.Stale(before.SourceHash) {
		t.Error("certificate reports stale against its own hash")
	}
}
