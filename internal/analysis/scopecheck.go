package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ScopeCheck enforces the paper's Section II scope rule on update
// functions: f(v) may access only its own vertex data and incident edges,
// through the VertexView. Anything else — writes to captured or
// package-level variables, writes through the shared receiver, goroutines,
// channels, or ad-hoc sync/atomic use — makes the per-operation atomicity
// of Section III insufficient and voids the premises of Theorems 1 and 2,
// which reason about conflicts on edge data only.
var ScopeCheck = &Analyzer{
	Name: "scopecheck",
	Doc: "check that update functions confine their effects to the vertex and " +
		"incident edges (the pull-mode scope of Algorithm 1)",
	Run: runScopeCheck,
}

func runScopeCheck(pass *Pass) (any, error) {
	for _, u := range FindUpdateFuncs(pass) {
		checkScope(pass, u)
	}
	return nil, nil
}

func checkScope(pass *Pass, u UpdateFn) {
	var recv types.Object
	if u.Decl != nil && u.Decl.Recv != nil && len(u.Decl.Recv.List) == 1 && len(u.Decl.Recv.List[0].Names) == 1 {
		recv = pass.Info.Defs[u.Decl.Recv.List[0].Names[0]]
	}
	span := u.Pos()

	checkWrite := func(lhs ast.Expr) {
		switch lhs.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.ParenExpr:
		default:
			return // rootless (e.g. a call result); nothing addressable to classify
		}
		root := rootIdent(lhs)
		if root == nil || root.Name == "_" {
			return
		}
		obj := pass.Info.Uses[root]
		if obj == nil {
			obj = pass.Info.Defs[root]
		}
		if obj == nil {
			return
		}
		if _, isBare := lhs.(*ast.Ident); recv != nil && obj == recv && !isBare {
			pass.Reportf(lhs.Pos(),
				"%s writes receiver state %q: the receiver is shared by every concurrent update, so this is a data race outside the edge-conflict model of Section II",
				u.Name, exprString(lhs))
			return
		}
		if declaredWithin(obj, span) {
			return // local variable (or parameter): in scope
		}
		kind := "captured variable"
		if obj.Parent() == pass.Pkg.Scope() {
			kind = "package-level variable"
		}
		pass.Reportf(lhs.Pos(),
			"%s writes %s %q: the Section II scope rule confines f(v) to its vertex and incident edges (VertexView); out-of-scope writes race under nondeterministic execution and void Theorems 1 and 2",
			u.Name, kind, root.Name)
	}

	ast.Inspect(u.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(s.X)
		case *ast.GoStmt:
			pass.Reportf(s.Pos(),
				"%s spawns a goroutine: update functions are the engine's unit of scheduling; nested concurrency is outside the system model",
				u.Name)
		case *ast.SendStmt:
			pass.Reportf(s.Pos(),
				"%s sends on a channel: channel communication inside an update function synchronizes outside the edge-conflict model",
				u.Name)
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				pass.Reportf(s.Pos(),
					"%s receives from a channel: channel communication inside an update function synchronizes outside the edge-conflict model",
					u.Name)
			}
		case *ast.SelectStmt:
			pass.Reportf(s.Pos(),
				"%s uses select: channel communication inside an update function synchronizes outside the edge-conflict model",
				u.Name)
		case *ast.CallExpr:
			checkScopeCall(pass, u, s, checkWrite)
		}
		return true
	})
}

// checkScopeCall flags builtin mutation of out-of-scope containers and any
// use of sync / sync/atomic facilities.
func checkScopeCall(pass *Pass, u UpdateFn, call *ast.CallExpr, checkWrite func(ast.Expr)) {
	if id, ok := call.Fun.(*ast.Ident); ok && len(call.Args) > 0 {
		switch id.Name {
		case "delete", "clear":
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				checkWrite(call.Args[0])
			}
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if pkg := selectedPackage(pass, sel); pkg == "sync" || pkg == "sync/atomic" {
		pass.Reportf(call.Pos(),
			"%s calls into %s: atomicity of edge data is the engine's job (the Section III realizations); ad-hoc synchronization invalidates the conflict census",
			u.Name, pkg)
	}
}

// selectedPackage returns the import path of the package a selector call
// resolves into, either directly (atomic.AddInt64) or through the method's
// receiver type (mu.Lock where mu is a sync.Mutex); "" otherwise.
func selectedPackage(pass *Pass, sel *ast.SelectorExpr) string {
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := pass.Info.Uses[id].(*types.PkgName); ok {
			return pkgName.Imported().Path()
		}
	}
	if obj := pass.Info.Uses[sel.Sel]; obj != nil {
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return fn.Pkg().Path()
			}
		}
	}
	return ""
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return exprString(x.X)
	default:
		return "expression"
	}
}
