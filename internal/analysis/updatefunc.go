package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// UpdateFn is one update function found in a package: a function, method,
// or function literal whose only parameter is a core.VertexView. This is
// exactly the core.UpdateFunc contract — the paper's f(v) — and excludes
// e.g. the autonomous engine's func(core.VertexView, *Scheduler), which
// runs under a different (sequential, push-mode) execution model.
type UpdateFn struct {
	// Name is a display name: "(*Coloring).Update", "kernel", or
	// "func literal".
	Name string
	// Recv is the receiver's named type when the update is a method.
	Recv *types.Named
	// Decl is the declaration (nil for literals); Lit the literal (nil
	// for declarations).
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Body is the function body.
	Body *ast.BlockStmt
	// View is the view parameter's object; nil when the parameter is
	// anonymous or blank.
	View types.Object
}

// Pos returns the position to report function-level findings at.
func (u UpdateFn) Pos() ast.Node {
	if u.Decl != nil {
		return u.Decl
	}
	return u.Lit
}

// IsVertexView reports whether t is the core.VertexView interface: a named
// interface type called VertexView declared in a package named "core".
// Matching by package *name* rather than full import path keeps the passes
// usable on fixture corpora (and on vendored copies) while staying precise
// enough in practice — the repository has exactly one such type.
func IsVertexView(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != "VertexView" || obj.Pkg() == nil || obj.Pkg().Name() != "core" {
		return false
	}
	_, isIface := n.Underlying().(*types.Interface)
	return isIface
}

// isTestFile reports whether the node's file is a _test.go file; the
// passes lint production code only (test helpers deliberately break the
// scope rule to observe the engine).
func isTestFile(pass *Pass, n ast.Node) bool {
	return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
}

// FindUpdateFuncs discovers every update function in the pass's package,
// skipping test files.
func FindUpdateFuncs(pass *Pass) []UpdateFn {
	var out []UpdateFn
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if u, ok := asUpdateFn(pass, fn.Type, fn.Body); ok {
					u.Decl = fn
					u.Name = fn.Name.Name
					if fn.Recv != nil && len(fn.Recv.List) == 1 {
						if named := namedRecvType(pass, fn.Recv.List[0].Type); named != nil {
							u.Recv = named
							u.Name = "(*" + named.Obj().Name() + ")." + fn.Name.Name
						}
					}
					out = append(out, u)
				}
			case *ast.FuncLit:
				if u, ok := asUpdateFn(pass, fn.Type, fn.Body); ok {
					u.Lit = fn
					u.Name = "func literal"
					out = append(out, u)
				}
			}
			return true
		})
	}
	return out
}

// asUpdateFn checks the single-VertexView-parameter shape and extracts the
// view parameter object.
func asUpdateFn(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt) (UpdateFn, bool) {
	if body == nil || ft.Params == nil || len(ft.Params.List) != 1 {
		return UpdateFn{}, false
	}
	field := ft.Params.List[0]
	if len(field.Names) > 1 {
		return UpdateFn{}, false
	}
	t := pass.Info.TypeOf(field.Type)
	if t == nil || !IsVertexView(t) {
		return UpdateFn{}, false
	}
	u := UpdateFn{Body: body}
	if len(field.Names) == 1 && field.Names[0].Name != "_" {
		u.View = pass.Info.Defs[field.Names[0]]
	}
	return u, true
}

// namedRecvType unwraps a method receiver type expression to its named type.
func namedRecvType(pass *Pass, expr ast.Expr) *types.Named {
	t := pass.Info.TypeOf(expr)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// viewCall matches a call expression of the form view.Method(...) where
// view's static type is core.VertexView, and returns the method name. The
// receiver need not be the update's own parameter: any VertexView-typed
// value counts (the scope rule concerns the interface surface, not a
// particular variable).
func viewCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	t := pass.Info.TypeOf(sel.X)
	if t == nil || !IsVertexView(t) {
		return "", false
	}
	return sel.Sel.Name, true
}

// declaredWithin reports whether obj's declaration lies inside the span of
// node — the passes' notion of "local to this update function". Receivers
// and parameters count as declared within their FuncDecl.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// rootIdent walks to the base identifier of an assignable expression:
// a[i].b.c → a, *p → p. It returns nil for rootless expressions (e.g.
// function-call results).
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}
