package analysis

// propcheck verifies the declared eligibility.Properties against what the
// update function's merge actually computes. conflictclass (PR 5) only
// *extracts* the declaration; a wrong Monotonic claim would silently
// admit an ineligible algorithm to the NoSync and ε-stop tiers. This
// pass closes the gap for the merge shapes the built-in algorithms use:
// it recognizes the gather loop's accumulator update, compiles it with
// the evaluator into a step function m : Acc × Word → Acc, and checks
// the semilattice laws bounded-exhaustively over the word domain. A
// declared-Monotonic merge that fails commutativity, associativity, or
// idempotence is a diagnostic carrying a concrete counter-example
// triple; a merge the extractor cannot handle is recorded as unverified
// in the pass result (and the certificate), never reported — soundness
// caveat: silence is "not disproven", only a counter-example is a fact.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"math"
	"strings"

	"ndgraph/internal/eligibility"
)

// PropCheck is the property-verification pass.
var PropCheck = &Analyzer{
	Name: "propcheck",
	Doc: "verify declared Properties (monotone merge ⇒ commutative, " +
		"associative, idempotent) against the update function's gather " +
		"loop by bounded-exhaustive evaluation; report counter-examples",
	Run: runPropCheck,
}

// MergeFacts records what the evaluator established about one update
// function's merge — the propcheck slice of the eligibility certificate.
type MergeFacts struct {
	// Extracted reports whether a merge step function was recognized and
	// compiled; when false every law below is meaningless and Note says
	// why (unsupported shape, too many captures, disagreeing sites).
	Extracted bool `json:"extracted"`
	// Sites is the number of gather sites that contributed (they must
	// agree pointwise; WCC's in- and out-loops are two sites, one merge).
	Sites int `json:"sites"`
	// AccKind names the accumulator space: "uint64" or "float64".
	AccKind string `json:"acc_kind,omitempty"`
	// Commutative / Associative / Idempotent are the checked semilattice
	// laws. Associative is meaningful only when AssocChecked is true (the
	// acc-space embedding must round-trip through words).
	Commutative  bool `json:"commutative"`
	Associative  bool `json:"associative"`
	Idempotent   bool `json:"idempotent"`
	AssocChecked bool `json:"assoc_checked"`
	// SemilatticeVerified is the conjunction backing a Monotonic claim:
	// all three laws checked and held.
	SemilatticeVerified bool `json:"semilattice_verified"`
	// Counter is the first counter-example found, empty when laws hold.
	Counter string `json:"counter,omitempty"`
	// Note explains a false Extracted.
	Note string `json:"note,omitempty"`
}

// PropReport is propcheck's per-update-function result.
type PropReport struct {
	Name  string
	Recv  string
	Props *eligibility.Properties
	Merge MergeFacts
	// Hash is the FNV-1a source identity of the update function plus its
	// Properties and ResidualDelta declarations — the certificate key.
	Hash string
}

func runPropCheck(pass *Pass) (any, error) {
	ev := newEvaluator(pass)
	var reports []PropReport
	for _, u := range FindUpdateFuncs(pass) {
		r := PropReport{Name: u.Name, Hash: updateHash(pass, u)}
		if u.Recv != nil {
			r.Recv = u.Recv.Obj().Name()
			if props, ok := extractProperties(pass, u.Recv); ok {
				r.Props = &props
			}
		}
		r.Merge = checkMerge(ev, u)
		reports = append(reports, r)

		// The diagnostic needs both sides of the contradiction: a
		// statically readable Monotonic declaration and a successfully
		// compiled merge whose laws refute it.
		if r.Props != nil && r.Props.Monotonic && r.Merge.Extracted && !r.Merge.SemilatticeVerified {
			law := "semilattice laws"
			switch {
			case !r.Merge.Commutative:
				law = "commutativity"
			case !r.Merge.Idempotent:
				law = "idempotence"
			case r.Merge.AssocChecked && !r.Merge.Associative:
				law = "associativity"
			}
			// The counter string already leads with the law name; strip
			// it so the diagnostic does not read "idempotence:
			// idempotence:".
			counter := strings.TrimPrefix(r.Merge.Counter, law+": ")
			pass.reportCounter(u.Pos().Pos(), r.Merge.Counter,
				"%s declares Monotonic but its merge violates %s: %s — a write-write race on this merge does not self-correct, so the Theorem 2 premise is false",
				u.Name, law, counter)
		}
	}
	return reports, nil
}

// updateHash computes the certificate source identity for one update
// function: the update declaration plus the receiver's Properties and
// ResidualDelta methods (the three sources every admission fact derives
// from). Any token-level edit to any of them changes the hash.
func updateHash(pass *Pass, u UpdateFn) string {
	nodes := []ast.Node{u.Pos()}
	if u.Recv != nil {
		if d := findMethodDecl(pass, u.Recv, "Properties"); d != nil {
			nodes = append(nodes, d)
		}
		if d := findMethodDecl(pass, u.Recv, "ResidualDelta"); d != nil {
			nodes = append(nodes, d)
		}
	}
	return srcHash(pass.Fset, nodes...)
}

// mergeStep is one compiled merge: step applies one incoming edge word
// to the accumulator; lift embeds a word into the accumulator space;
// encode inverts lift (verified empirically before use).
type mergeStep struct {
	step    func(a val, w uint64, frees []val) (val, error)
	lift    func(w uint64, frees []val) (val, error)
	accKind valKind
	accBits uint8
}

// checkMerge extracts, compiles, and law-checks the update's merge.
func checkMerge(ev *evaluator, u UpdateFn) MergeFacts {
	sites, note := findMergeSites(ev.pass, u)
	if note != "" {
		return MergeFacts{Note: note}
	}
	if len(sites) == 0 {
		return MergeFacts{Note: "no gather sites (no accumulator update over edge reads)"}
	}

	// All sites compile against one shared free-symbol table so a single
	// assignment enumeration covers every site consistently.
	var frees []freeSym
	freeIdx := map[string]int{}
	var steps []mergeStep
	for _, s := range sites {
		step, err := compileSite(ev, u, s, &frees, freeIdx)
		if err != nil {
			return MergeFacts{Sites: len(sites), Note: fmt.Sprintf("site at %s: %v", ev.pass.Fset.Position(s.pos), err)}
		}
		steps = append(steps, step)
	}
	for _, s := range steps[1:] {
		if s.accKind != steps[0].accKind || s.accBits != steps[0].accBits {
			return MergeFacts{Sites: len(sites), Note: "gather sites target accumulators of different types"}
		}
	}

	facts := lawCheck(steps, frees)
	facts.Sites = len(sites)
	return facts
}

// site is one recognized gather statement inside a loop that reads edge
// values.
type site struct {
	pos token.Pos
	// acc is the accumulator object (declared before the loop).
	acc types.Object
	// reads are the InEdgeVal/OutEdgeVal calls this site consumes; all of
	// them denote the same word during one application.
	reads []*ast.CallExpr
	// form discriminates the compile strategy.
	form int
	// Form 1 (if-init): ifInit is `x := E(read)`, cond the condition,
	// assignRHS the body's right-hand side. Forms 2/3/4 use cond (form 3),
	// assignRHS and assignOp (token.ASSIGN for plain, the op for op=).
	ifInitObj types.Object
	ifInitRHS ast.Expr
	cond      ast.Expr
	assignRHS ast.Expr
	assignOp  token.Token
}

const (
	formIfInit   = 1 // if x := E(read); cond { acc = rhs }
	formOpAssign = 2 // acc op= E(read)
	formIfPlain  = 3 // if cond(read, acc) { acc = rhs(read) }
	formAssign   = 4 // acc = RHS(read, acc)
)

// findMergeSites walks the update body's loops and recognizes gather
// sites. A loop whose edge reads feed no accumulator (a scatter loop
// guarding Set* calls) contributes nothing; a read-bearing statement
// that updates an accumulator through an unrecognized shape poisons the
// extraction (non-"" note) rather than being silently dropped.
func findMergeSites(pass *Pass, u UpdateFn) ([]site, string) {
	var sites []site
	note := ""
	ast.Inspect(u.Body, func(n ast.Node) bool {
		if note != "" {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		ast.Inspect(loop.Body, func(m ast.Node) bool {
			if note != "" {
				return false
			}
			switch st := m.(type) {
			case *ast.IfStmt:
				if s, ok, bad := ifSite(pass, u, loop, st); bad != "" {
					note = bad
					return false
				} else if ok {
					sites = append(sites, s)
					return false // consumed; don't descend into the body
				}
				// An if whose reads guard non-merge work (WCC's scatter
				// correction, SSSP's candidate rewrite) is not a site;
				// descend in case a nested statement is.
				return true
			case *ast.AssignStmt:
				if s, ok, bad := assignSite(pass, u, loop, st); bad != "" {
					note = bad
					return false
				} else if ok {
					sites = append(sites, s)
					return false
				}
				return true
			}
			return true
		})
		return true // nested loops handled by the outer Inspect
	})
	return sites, note
}

// edgeReads collects the InEdgeVal/OutEdgeVal calls inside expr.
func edgeReads(pass *Pass, expr ast.Expr) []*ast.CallExpr {
	var out []*ast.CallExpr
	if expr == nil {
		return nil
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name, ok := viewCall(pass, call); ok && (name == "InEdgeVal" || name == "OutEdgeVal") {
				out = append(out, call)
			}
		}
		return true
	})
	return out
}

// accObject resolves an assignment target to an accumulator: a plain
// identifier naming a variable declared inside the update function but
// before the loop.
func accObject(pass *Pass, u UpdateFn, loop *ast.ForStmt, lhs ast.Expr) types.Object {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil || !declaredWithin(obj, u.Pos()) || obj.Pos() >= loop.Pos() {
		return nil
	}
	return obj
}

// ifSite recognizes forms 1 and 3. Returns (site, ok, poisonNote).
func ifSite(pass *Pass, u UpdateFn, loop *ast.ForStmt, st *ast.IfStmt) (site, bool, string) {
	if st.Else != nil || len(st.Body.List) != 1 {
		return site{}, false, ""
	}
	asg, ok := st.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return site{}, false, ""
	}
	acc := accObject(pass, u, loop, asg.Lhs[0])
	if acc == nil {
		return site{}, false, ""
	}

	if st.Init != nil { // form 1
		init, ok := st.Init.(*ast.AssignStmt)
		if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
			return site{}, false, ""
		}
		reads := edgeReads(pass, init.Rhs[0])
		if len(reads) == 0 {
			return site{}, false, ""
		}
		if len(reads) > 1 {
			return site{}, false, fmt.Sprintf("gather at %s reads two different edge words in one init", pass.Fset.Position(st.Pos()))
		}
		if len(edgeReads(pass, st.Cond)) != 0 || len(edgeReads(pass, asg.Rhs[0])) != 0 {
			return site{}, false, fmt.Sprintf("gather at %s re-reads the edge outside its init binding", pass.Fset.Position(st.Pos()))
		}
		id, ok := init.Lhs[0].(*ast.Ident)
		if !ok {
			return site{}, false, ""
		}
		return site{
			pos:       st.Pos(),
			acc:       acc,
			reads:     reads,
			form:      formIfInit,
			ifInitObj: pass.Info.Defs[id],
			ifInitRHS: init.Rhs[0],
			cond:      st.Cond,
			assignRHS: asg.Rhs[0],
			assignOp:  token.ASSIGN,
		}, true, ""
	}

	// form 3: reads appear directly in the condition and/or body.
	reads := append(edgeReads(pass, st.Cond), edgeReads(pass, asg.Rhs[0])...)
	if len(reads) == 0 {
		return site{}, false, ""
	}
	return site{
		pos:       st.Pos(),
		acc:       acc,
		reads:     reads,
		form:      formIfPlain,
		cond:      st.Cond,
		assignRHS: asg.Rhs[0],
		assignOp:  token.ASSIGN,
	}, true, ""
}

// assignSite recognizes forms 2 and 4 at statement level (an assignment
// not wrapped in a recognized if).
func assignSite(pass *Pass, u UpdateFn, loop *ast.ForStmt, st *ast.AssignStmt) (site, bool, string) {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return site{}, false, ""
	}
	reads := edgeReads(pass, st.Rhs[0])
	if len(reads) == 0 {
		return site{}, false, ""
	}
	acc := accObject(pass, u, loop, st.Lhs[0])
	if acc == nil {
		// An edge read flowing into a loop-local (e.g. a candidate
		// variable) is not a gather; the local's consumers are.
		if st.Tok == token.DEFINE {
			return site{}, false, ""
		}
		return site{}, false, ""
	}
	form := formAssign
	op := st.Tok
	switch st.Tok {
	case token.ASSIGN:
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		form = formOpAssign
	default:
		return site{}, false, fmt.Sprintf("gather at %s uses unsupported assignment %s", pass.Fset.Position(st.Pos()), st.Tok)
	}
	return site{pos: st.Pos(), acc: acc, reads: reads, form: form, assignRHS: st.Rhs[0], assignOp: op}, true, ""
}

// opOfAssign maps an op= token to its binary operator.
func opOfAssign(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	}
	return token.ILLEGAL
}

// compileSite turns one recognized site into a mergeStep. Slot layout:
// 0 = accumulator, 1 = raw edge word (uint64), 2 = the if-init binding
// (form 1 only).
func compileSite(ev *evaluator, u UpdateFn, s site, frees *[]freeSym, freeIdx map[string]int) (mergeStep, error) {
	accKind, accBits, ok := kindOfType(s.acc.Type())
	if !ok {
		return mergeStep{}, fmt.Errorf("accumulator %s has non-basic type %s", s.acc.Name(), s.acc.Type())
	}
	newCtx := func(slots map[types.Object]int, subst map[ast.Expr]int) *compileCtx {
		return &compileCtx{
			ev:      ev,
			slots:   slots,
			subst:   subst,
			frees:   frees,
			freeIdx: freeIdx,
			scope:   u.Pos(),
			inlined: map[*ast.FuncDecl]bool{},
		}
	}
	subst := map[ast.Expr]int{}
	for _, r := range s.reads {
		subst[r] = 1
	}

	switch s.form {
	case formIfInit:
		liftFn, err := newCtx(map[types.Object]int{s.acc: 0}, subst).compile(s.ifInitRHS)
		if err != nil {
			return mergeStep{}, err
		}
		slots := map[types.Object]int{s.acc: 0}
		if s.ifInitObj != nil {
			slots[s.ifInitObj] = 2
		}
		condFn, err := newCtx(slots, nil).compile(s.cond)
		if err != nil {
			return mergeStep{}, err
		}
		rhsFn, err := newCtx(slots, nil).compile(s.assignRHS)
		if err != nil {
			return mergeStep{}, err
		}
		lift := func(w uint64, fr []val) (val, error) {
			return liftFn([]val{{}, vUint(w, 64)}, fr)
		}
		return mergeStep{
			accKind: accKind, accBits: accBits,
			lift: lift,
			step: func(a val, w uint64, fr []val) (val, error) {
				x, err := lift(w, fr)
				if err != nil {
					return val{}, err
				}
				args := []val{a, vUint(w, 64), x}
				c, err := condFn(args, fr)
				if err != nil {
					return val{}, err
				}
				if c.k != kindBool {
					return val{}, fmt.Errorf("non-boolean merge condition")
				}
				if !c.b {
					return a, nil
				}
				return rhsFn(args, fr)
			},
		}, nil

	case formOpAssign:
		rhsFn, err := newCtx(map[types.Object]int{s.acc: 0}, subst).compile(s.assignRHS)
		if err != nil {
			return mergeStep{}, err
		}
		op := opOfAssign(s.assignOp)
		readsAcc := usesObject(ev.pass, s.assignRHS, s.acc)
		var lift func(w uint64, fr []val) (val, error)
		if !readsAcc {
			lift = func(w uint64, fr []val) (val, error) {
				return rhsFn([]val{{}, vUint(w, 64)}, fr)
			}
		} else {
			lift = kindLift(accKind, accBits)
		}
		return mergeStep{
			accKind: accKind, accBits: accBits,
			lift: lift,
			step: func(a val, w uint64, fr []val) (val, error) {
				r, err := rhsFn([]val{a, vUint(w, 64)}, fr)
				if err != nil {
					return val{}, err
				}
				return applyBinary(op, a, r)
			},
		}, nil

	case formIfPlain, formAssign:
		slots := map[types.Object]int{s.acc: 0}
		var condFn evalFn
		var err error
		if s.form == formIfPlain {
			condFn, err = newCtx(slots, subst).compile(s.cond)
			if err != nil {
				return mergeStep{}, err
			}
		}
		rhsFn, err := newCtx(slots, subst).compile(s.assignRHS)
		if err != nil {
			return mergeStep{}, err
		}
		return mergeStep{
			accKind: accKind, accBits: accBits,
			lift: kindLift(accKind, accBits),
			step: func(a val, w uint64, fr []val) (val, error) {
				args := []val{a, vUint(w, 64)}
				if condFn != nil {
					c, err := condFn(args, fr)
					if err != nil {
						return val{}, err
					}
					if c.k != kindBool {
						return val{}, fmt.Errorf("non-boolean merge condition")
					}
					if !c.b {
						return a, nil
					}
				}
				return rhsFn(args, fr)
			},
		}, nil
	}
	return mergeStep{}, fmt.Errorf("unknown site form %d", s.form)
}

// kindLift is the canonical word→acc embedding used when the site has no
// explicit lift expression: identity for integer accumulators, a float64
// bit decode for float ones.
func kindLift(kind valKind, bits uint8) func(uint64, []val) (val, error) {
	switch kind {
	case kindUint:
		return func(w uint64, _ []val) (val, error) { return vUint(w, bits), nil }
	case kindInt:
		return func(w uint64, _ []val) (val, error) { return vInt(int64(w), bits), nil }
	case kindFloat:
		return func(w uint64, _ []val) (val, error) { return vFloat(math.Float64frombits(w)), nil }
	}
	return func(uint64, []val) (val, error) { return val{}, fmt.Errorf("unliftable accumulator kind") }
}

// encodeAcc inverts kindLift on the accumulator space.
func encodeAcc(a val) (uint64, bool) {
	switch a.k {
	case kindUint:
		return a.u, true
	case kindInt:
		return uint64(a.i), true
	case kindFloat:
		return math.Float64bits(a.f), true
	}
	return 0, false
}

// usesObject reports whether expr references obj.
func usesObject(pass *Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// lawCheck drives the bounded-exhaustive sweep: commutativity and
// idempotence over (acc × word × word), associativity over the acc-space
// binary operator when the word embedding round-trips, all under every
// free-symbol assignment. NaN tuples are skipped (no kernel's value
// contract admits NaN payloads); evaluation errors skip the tuple too —
// both reduce coverage, never produce findings.
func lawCheck(steps []mergeStep, frees []freeSym) MergeFacts {
	m0 := steps[0]
	facts := MergeFacts{
		Extracted:   true,
		Commutative: true,
		Associative: true,
		Idempotent:  true,
	}
	switch m0.accKind {
	case kindUint:
		facts.AccKind = "uint64"
	case kindInt:
		facts.AccKind = "int64"
	case kindFloat:
		facts.AccKind = "float64"
	}
	words := wordDomain()

	for _, fr := range freeAssignments(frees) {
		// Accumulator domain: the lifted word values (plus whatever the
		// lift maps the boundary words to under this assignment).
		var accs []val
		seen := map[val]bool{}
		for _, w := range words {
			a, err := m0.lift(w, fr)
			if err != nil || a.isNaN() || seen[a] {
				continue
			}
			seen[a] = true
			accs = append(accs, a)
		}

		// Pointwise agreement across sites: one merge, several loops.
		for _, s := range steps[1:] {
			for _, a := range accs {
				for _, w := range words {
					r0, e0 := m0.step(a, w, fr)
					r1, e1 := s.step(a, w, fr)
					if e0 != nil || e1 != nil || r0.isNaN() || r1.isNaN() {
						continue
					}
					if !r0.eq(r1) {
						return MergeFacts{
							Sites: len(steps),
							Note: fmt.Sprintf("gather sites disagree at acc=%s word=%#x: %s vs %s",
								a, w, r0, r1),
						}
					}
				}
			}
		}

		for _, a := range accs {
			for _, w1 := range words {
				r1, err := m0.step(a, w1, fr)
				if err != nil || r1.isNaN() {
					continue
				}
				// Idempotence: applying the same word twice is applying it
				// once.
				if facts.Idempotent {
					rr, err := m0.step(r1, w1, fr)
					if err == nil && !rr.isNaN() && !rr.eq(r1) {
						facts.Idempotent = false
						if facts.Counter == "" {
							facts.Counter = fmt.Sprintf("idempotence: m(m(%s, %#x), %#x) = %s ≠ %s", a, w1, w1, rr, r1)
						}
					}
				}
				// Commutativity: word application order is irrelevant.
				for _, w2 := range words {
					lhs, e1 := m0.step(r1, w2, fr)
					r2, e2 := m0.step(a, w2, fr)
					if e1 != nil || e2 != nil {
						continue
					}
					rhs, e3 := m0.step(r2, w1, fr)
					if e3 != nil || lhs.isNaN() || rhs.isNaN() {
						continue
					}
					if !lhs.eq(rhs) && facts.Commutative {
						facts.Commutative = false
						if facts.Counter == "" {
							facts.Counter = fmt.Sprintf("commutativity: m(m(%s, %#x), %#x) = %s but m(m(%s, %#x), %#x) = %s",
								a, w1, w2, lhs, a, w2, w1, rhs)
						}
					}
				}
			}
		}

		// Associativity over the induced acc-space binary operator
		// g(a, b) = m(a, encode(b)), valid only when lift(encode(b)) == b
		// on the whole domain (the embedding round-trips).
		roundtrips := true
		for _, a := range accs {
			w, ok := encodeAcc(a)
			if !ok {
				roundtrips = false
				break
			}
			b, err := m0.lift(w, fr)
			if err != nil || !b.eq(a) {
				roundtrips = false
				break
			}
		}
		if !roundtrips {
			facts.AssocChecked = false
			facts.Associative = false
			continue
		}
		facts.AssocChecked = true
		g := func(a, b val) (val, bool) {
			w, ok := encodeAcc(b)
			if !ok {
				return val{}, false
			}
			r, err := m0.step(a, w, fr)
			if err != nil || r.isNaN() {
				return val{}, false
			}
			return r, true
		}
		for _, x := range accs {
			for _, y := range accs {
				xy, ok := g(x, y)
				if !ok {
					continue
				}
				for _, z := range accs {
					lhs, ok1 := g(xy, z)
					yz, ok2 := g(y, z)
					if !ok1 || !ok2 {
						continue
					}
					rhs, ok3 := g(x, yz)
					if !ok3 {
						continue
					}
					if !lhs.eq(rhs) && facts.Associative {
						facts.Associative = false
						if facts.Counter == "" {
							facts.Counter = fmt.Sprintf("associativity: g(g(%s, %s), %s) = %s ≠ g(%s, g(%s, %s)) = %s",
								x, y, z, lhs, x, y, z, rhs)
						}
					}
				}
			}
		}
	}

	facts.SemilatticeVerified = facts.Commutative && facts.Idempotent &&
		facts.AssocChecked && facts.Associative
	return facts
}
