package shard

import (
	"testing"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/trace"
)

// The out-of-core engine records one trace event per executed update. Shard
// traces are diffable (events only) but not replayable — window slot ids are
// not canonical edge ids across interval loads.
func TestShardTraceRecordsUpdates(t *testing.T) {
	g := rmatGraph(t, 59)
	st := buildStorage(t, g, 4)
	initWCC(t, st)
	rec := trace.NewRecorder(1 << 18)
	e, err := NewEngine(st, Options{Threads: 4, Mode: edgedata.ModeAtomic, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	e.Frontier().ScheduleAll()
	res, err := e.Run(minLabel)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if rec.Total() != res.Updates {
		t.Fatalf("trace recorded %d events for %d updates", rec.Total(), res.Updates)
	}
	want := algorithms.ReferenceWCC(g)
	for v := range want {
		if uint32(st.Vertices[v]) != want[v] {
			t.Fatalf("vertex %d = %d, want %d", v, st.Vertices[v], want[v])
		}
	}
}
