package shard

import (
	"fmt"
	"runtime"
	"time"

	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/frontier"
	"ndgraph/internal/sched"
)

// Options configures a PSW execution.
type Options struct {
	// Threads is the intra-interval worker count; < 1 = GOMAXPROCS.
	Threads int
	// Mode is the atomicity method for the in-memory window buffers.
	// Parallel execution refuses ModeSequential.
	Mode edgedata.Mode
	// MaxIters caps full passes over the intervals; 0 = 1<<20.
	MaxIters int
}

// Result reports a PSW run.
type Result struct {
	Iterations   int
	Updates      int64
	Converged    bool
	Duration     time.Duration
	BytesRead    int64
	BytesWritten int64
}

// Engine executes update functions over sharded storage with the
// parallel-sliding-windows schedule.
type Engine struct {
	st   *Storage
	opts Options

	front *frontier.Frontier
}

// NewEngine binds an executor to storage.
func NewEngine(st *Storage, opts Options) (*Engine, error) {
	if st == nil {
		return nil, fmt.Errorf("shard: nil storage")
	}
	if opts.Threads < 1 {
		opts.Threads = runtime.GOMAXPROCS(0)
	}
	if opts.Threads > 1 && opts.Mode == edgedata.ModeSequential {
		return nil, fmt.Errorf("shard: %d threads require a concurrent edge-data mode", opts.Threads)
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 1 << 20
	}
	return &Engine{st: st, opts: opts, front: frontier.NewFrontier(st.N())}, nil
}

// Frontier exposes the scheduled set for seeding.
func (e *Engine) Frontier() *frontier.Frontier { return e.front }

// Run executes update to convergence. One iteration is one pass over all
// intervals; within the pass, interval i's subgraph (shard i in full plus
// the interval's window from every other shard) is loaded, scheduled
// vertices of the interval execute in parallel, and dirty values are
// written back before the next interval loads — so later intervals see
// earlier intervals' writes (asynchronous semantics across intervals, as
// in GraphChi).
func (e *Engine) Run(update core.UpdateFunc) (Result, error) {
	if update == nil {
		return Result{}, fmt.Errorf("shard: nil update function")
	}
	res := Result{Converged: true}
	start := time.Now()
	for e.front.Size() > 0 {
		if res.Iterations >= e.opts.MaxIters {
			res.Converged = false
			break
		}
		members := e.front.Members()
		cursor := 0
		for i := range e.st.intervals {
			iv := e.st.intervals[i]
			// Scheduled vertices of this interval (members ascending).
			lo := cursor
			for cursor < len(members) && uint32(members[cursor]) < iv.Hi {
				cursor++
			}
			scheduled := members[lo:cursor]
			if len(scheduled) == 0 {
				continue
			}
			sub, err := e.load(i)
			if err != nil {
				return res, err
			}
			res.BytesRead += sub.bytesRead

			run := func(worker, v int) {
				view := &sub.views[worker]
				view.bind(uint32(v))
				update(view)
			}
			sched.ParallelBlocks(scheduled, e.opts.Threads, run)
			res.Updates += int64(len(scheduled))

			written, err := e.flush(sub)
			if err != nil {
				return res, err
			}
			res.BytesWritten += written
		}
		res.Iterations++
		e.front.Advance()
	}
	res.Duration = time.Since(start)
	return res, nil
}

// loadedRange maps a slice of the in-memory value store back to its
// on-disk location.
type loadedRange struct {
	shard    int
	off      int64 // record offset within the shard
	count    int64
	slotBase uint32 // first slot in the combined store
}

// subgraph is interval i's in-memory working set.
type subgraph struct {
	interval  Interval
	store     edgedata.Store
	ranges    []loadedRange
	bytesRead int64

	// Per local vertex adjacency: in-edges (from shard i) and out-edges
	// (from the windows).
	inSrc   [][]uint32
	inSlot  [][]uint32
	outDst  [][]uint32
	outSlot [][]uint32

	views []shardView
	eng   *Engine
}

// load builds interval i's subgraph from disk.
func (e *Engine) load(i int) (*subgraph, error) {
	iv := e.st.intervals[i]
	sub := &subgraph{
		interval: iv,
		eng:      e,
		inSrc:    make([][]uint32, iv.Len()),
		inSlot:   make([][]uint32, iv.Len()),
		outDst:   make([][]uint32, iv.Len()),
		outSlot:  make([][]uint32, iv.Len()),
	}

	// Plan the loads: shard i in full, plus interval i's window from
	// every other shard. The window of shard i over interval i is a
	// subrange of the full shard, so it is not loaded twice.
	var plan []loadedRange
	total := int64(0)
	fullShard := loadedRange{shard: i, off: 0, count: e.st.shards[i].Edges}
	fullShard.slotBase = 0
	total += fullShard.count
	plan = append(plan, fullShard)
	for k := range e.st.shards {
		if k == i {
			continue
		}
		w := e.st.shards[k].Windows[i]
		if w.Count == 0 {
			continue
		}
		plan = append(plan, loadedRange{shard: k, off: w.Off, count: w.Count, slotBase: uint32(total)})
		total += w.Count
	}

	sub.store = edgedata.New(e.opts.Mode, int(total))
	vals := make([]uint64, total)
	slot := int64(0)
	for _, r := range plan {
		recs, err := e.st.readRecords(r.shard, r.off, r.count)
		if err != nil {
			return nil, err
		}
		if err := e.st.readValues(r.shard, r.off, r.count, vals[slot:slot+r.count]); err != nil {
			return nil, err
		}
		sub.bytesRead += r.count * (recordBytes + valueBytes)
		// Index adjacency.
		isFull := r.shard == i
		for j := int64(0); j < r.count; j++ {
			src, dst := recs[2*j], recs[2*j+1]
			s := uint32(slot + j)
			if isFull {
				// In-edge of dst (dst ∈ interval i by shard invariant).
				lv := dst - iv.Lo
				sub.inSrc[lv] = append(sub.inSrc[lv], src)
				sub.inSlot[lv] = append(sub.inSlot[lv], s)
				// The diagonal block doubles as out-edges of interval i.
				if iv.Contains(src) {
					lo := src - iv.Lo
					sub.outDst[lo] = append(sub.outDst[lo], dst)
					sub.outSlot[lo] = append(sub.outSlot[lo], s)
				}
			} else {
				// Window record: out-edge of src (src ∈ interval i).
				lv := src - iv.Lo
				sub.outDst[lv] = append(sub.outDst[lv], dst)
				sub.outSlot[lv] = append(sub.outSlot[lv], s)
			}
		}
		slot += r.count
	}
	for j, v := range vals {
		sub.store.Store(uint32(j), v)
	}
	sub.ranges = plan
	sub.views = make([]shardView, e.opts.Threads)
	for w := range sub.views {
		sub.views[w].sub = sub
	}
	return sub, nil
}

// flush writes the working set's values back to their shards.
func (e *Engine) flush(sub *subgraph) (int64, error) {
	var written int64
	snap := sub.store.Snapshot()
	for _, r := range sub.ranges {
		if err := e.st.writeValues(r.shard, r.off, r.count, snap[r.slotBase:int64(r.slotBase)+r.count]); err != nil {
			return written, err
		}
		written += r.count * valueBytes
	}
	return written, nil
}

// shardView adapts a loaded subgraph to core.VertexView.
type shardView struct {
	sub *subgraph
	v   uint32
	lv  uint32 // v - interval.Lo
}

func (c *shardView) bind(v uint32) {
	c.v = v
	c.lv = v - c.sub.interval.Lo
}

func (c *shardView) V() uint32                { return c.v }
func (c *shardView) Vertex() uint64           { return c.sub.eng.st.Vertices[c.v] }
func (c *shardView) SetVertex(w uint64)       { c.sub.eng.st.Vertices[c.v] = w }
func (c *shardView) InDegree() int            { return len(c.sub.inSrc[c.lv]) }
func (c *shardView) OutDegree() int           { return len(c.sub.outDst[c.lv]) }
func (c *shardView) InNeighbor(k int) uint32  { return c.sub.inSrc[c.lv][k] }
func (c *shardView) OutNeighbor(k int) uint32 { return c.sub.outDst[c.lv][k] }

// InEdgeID and OutEdgeID return window-local slot ids; they are stable
// within one interval execution but NOT across iterations, so shard-based
// runs only suit algorithms without immutable per-edge side arrays (the
// canonical-index contract of the in-memory engine does not transfer).
func (c *shardView) InEdgeID(k int) uint32  { return c.sub.inSlot[c.lv][k] }
func (c *shardView) OutEdgeID(k int) uint32 { return c.sub.outSlot[c.lv][k] }

func (c *shardView) InEdgeVal(k int) uint64  { return c.sub.store.Load(c.sub.inSlot[c.lv][k]) }
func (c *shardView) OutEdgeVal(k int) uint64 { return c.sub.store.Load(c.sub.outSlot[c.lv][k]) }

func (c *shardView) SetInEdgeVal(k int, w uint64) {
	c.sub.store.Store(c.sub.inSlot[c.lv][k], w)
	c.sub.eng.front.Schedule(int(c.sub.inSrc[c.lv][k]))
}

func (c *shardView) SetOutEdgeVal(k int, w uint64) {
	c.sub.store.Store(c.sub.outSlot[c.lv][k], w)
	c.sub.eng.front.Schedule(int(c.sub.outDst[c.lv][k]))
}

func (c *shardView) ScheduleSelf() { c.sub.eng.front.Schedule(int(c.v)) }
func (c *shardView) Yield()        {}

var _ core.VertexView = (*shardView)(nil)
