package shard

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"

	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/fault"
	"ndgraph/internal/frontier"
	"ndgraph/internal/obs"
	"ndgraph/internal/sched"
	"ndgraph/internal/trace"
)

// Options configures a PSW execution.
type Options struct {
	// Threads is the intra-interval worker count; < 1 = GOMAXPROCS.
	Threads int
	// Mode is the atomicity method for the in-memory window buffers.
	// Parallel execution refuses ModeSequential.
	Mode edgedata.Mode
	// MaxIters caps full passes over the intervals; 0 = core.DefaultMaxIters.
	MaxIters int
	// Context, when non-nil, cancels the run; checked before every
	// interval, so a cancelled run stops within one interval load.
	Context context.Context
	// StallWindow enables the divergence watchdog (see core.Options).
	StallWindow int
	// Inject, when non-nil, arms the fault injector for the run: each
	// interval's in-memory window store is wrapped, faulted slots
	// reschedule both endpoints, and an injected crash aborts the pass.
	Inject *fault.Injector
	// Observer, when non-nil, receives one telemetry event per full pass
	// over the intervals (the PSW analog of an iteration).
	Observer *obs.Observer
	// Trace, when non-nil, records one event per executed update (pass,
	// worker, vertex, write count, committed vertex value). PSW runs record
	// update events only, never edge commits: window-slot ids are not
	// stable across iterations, so shard traces diff but do not replay.
	Trace *trace.Recorder
}

// Result reports a PSW run.
type Result struct {
	Iterations   int
	Updates      int64
	Converged    bool
	Duration     time.Duration
	BytesRead    int64
	BytesWritten int64
}

// Engine executes update functions over sharded storage with the
// parallel-sliding-windows schedule.
type Engine struct {
	st   *Storage
	opts Options

	front *frontier.Frontier

	// curSub is the interval working set currently executing; the fault
	// injector's heal hook reads it to map window slots back to endpoints.
	// Written only between interval dispatches (workers quiescent).
	curSub atomic.Pointer[subgraph]

	// panicked records the first recovered UpdateFunc panic of the run.
	panicked atomic.Pointer[updatePanic]

	// pool holds the persistent intra-interval workers, reused across all
	// intervals and iterations of every Run on this engine.
	pool *sched.Pool

	// flushBuf is the reusable write-back snapshot buffer; flush refills it
	// per interval instead of allocating a fresh O(window) slice each time.
	flushBuf []uint64

	// obsReads/obsWrites accumulate the pass's window-slot accesses for the
	// observer. The views they are summed from are rebuilt per interval, so
	// the engine carries the pass totals; written only between dispatches.
	obsReads, obsWrites int64
}

// updatePanic captures a recovered UpdateFunc panic.
type updatePanic struct {
	vertex uint32
	value  any
	stack  []byte
}

// NewEngine binds an executor to storage.
func NewEngine(st *Storage, opts Options) (*Engine, error) {
	if st == nil {
		return nil, fmt.Errorf("shard: nil storage")
	}
	if opts.Threads < 1 {
		opts.Threads = runtime.GOMAXPROCS(0)
	}
	if opts.Threads > 1 && opts.Mode == edgedata.ModeSequential {
		return nil, fmt.Errorf("shard: %d threads require a concurrent edge-data mode", opts.Threads)
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = core.DefaultMaxIters
	}
	e := &Engine{st: st, opts: opts, front: frontier.NewFrontier(st.N()), pool: sched.NewPoolNamed(opts.Threads, "shard")}
	e.pool.SetTimed(opts.Observer.Enabled())
	return e, nil
}

// Frontier exposes the scheduled set for seeding.
func (e *Engine) Frontier() *frontier.Frontier { return e.front }

// Close releases the engine's persistent worker pool. The engine stays
// usable — the next Run re-creates the pool — but Close makes the release
// deterministic instead of waiting for the pool's finalizer.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.Close()
		e.pool = nil
	}
}

// Run executes update to convergence. One iteration is one pass over all
// intervals; within the pass, interval i's subgraph (shard i in full plus
// the interval's window from every other shard) is loaded, scheduled
// vertices of the interval execute in parallel, and dirty values are
// written back before the next interval loads — so later intervals see
// earlier intervals' writes (asynchronous semantics across intervals, as
// in GraphChi).
func (e *Engine) Run(update core.UpdateFunc) (Result, error) {
	if update == nil {
		return Result{}, fmt.Errorf("shard: nil update function")
	}
	e.panicked.Store(nil)
	if e.pool == nil { // re-create after Close
		e.pool = sched.NewPoolNamed(e.opts.Threads, "shard")
		e.pool.SetTimed(e.opts.Observer.Enabled())
	}
	if inj := e.opts.Inject; inj != nil {
		// Heal rule: window slots map back to endpoints through the
		// currently loaded interval's working set.
		inj.Arm(func(slot uint32) {
			sub := e.curSub.Load()
			if sub == nil || int(2*slot+1) >= len(sub.ends) {
				return
			}
			e.front.Schedule(int(sub.ends[2*slot]))
			e.front.Schedule(int(sub.ends[2*slot+1]))
		})
		defer inj.Disarm()
	}
	res := Result{Converged: true}
	bestActive := e.st.N() + 1
	stalled := 0
	start := time.Now()
	for e.front.Size() > 0 {
		if ctx := e.opts.Context; ctx != nil {
			if err := ctx.Err(); err != nil {
				res.Converged = false
				res.Duration = time.Since(start)
				return res, err
			}
		}
		if res.Iterations >= e.opts.MaxIters {
			res.Converged = false
			break
		}
		if inj := e.opts.Inject; inj != nil && inj.CrashNow(res.Iterations) {
			res.Converged = false
			res.Duration = time.Since(start)
			return res, fmt.Errorf("shard: iteration %d: %w", res.Iterations, fault.ErrCrash)
		}
		if k := e.opts.StallWindow; k > 0 {
			if size := e.front.Size(); size < bestActive {
				bestActive, stalled = size, 0
			} else if stalled++; stalled >= k {
				res.Converged = false
				res.Duration = time.Since(start)
				return res, fmt.Errorf("shard: iteration %d: active vertices %d (best %d) unimproved for %d iterations: %w",
					res.Iterations, e.front.Size(), bestActive, k, core.ErrStalled)
			}
		}
		members := e.front.Members()
		passUpdates := res.Updates
		cursor := 0
		for i := range e.st.intervals {
			iv := e.st.intervals[i]
			// Scheduled vertices of this interval (members ascending).
			lo := cursor
			for cursor < len(members) && uint32(members[cursor]) < iv.Hi {
				cursor++
			}
			scheduled := members[lo:cursor]
			if len(scheduled) == 0 {
				continue
			}
			if ctx := e.opts.Context; ctx != nil {
				if err := ctx.Err(); err != nil {
					res.Converged = false
					res.Duration = time.Since(start)
					return res, err
				}
			}
			sub, err := e.load(i)
			if err != nil {
				return res, err
			}
			res.BytesRead += sub.bytesRead
			e.curSub.Store(sub)

			iter := res.Iterations
			run := func(worker, v int) {
				if e.panicked.Load() != nil {
					return
				}
				defer func() {
					if r := recover(); r != nil {
						e.panicked.CompareAndSwap(nil, &updatePanic{vertex: uint32(v), value: r, stack: debug.Stack()})
					}
				}()
				view := &sub.views[worker]
				view.bind(uint32(v))
				update(view)
				if t := e.opts.Trace; t != nil {
					t.Record(iter, worker, uint32(v), view.uWrites, e.st.Vertices[v])
				}
			}
			e.pool.RunBlocks(scheduled, run)
			e.curSub.Store(nil)
			if e.opts.Observer != nil {
				// The views die with the interval; bank their counters on
				// the engine so the pass-level emit sees the totals.
				for w := range sub.views {
					e.obsReads += sub.views[w].nReads
					e.obsWrites += sub.views[w].nWrites
				}
			}
			if p := e.panicked.Load(); p != nil {
				res.Converged = false
				res.Duration = time.Since(start)
				return res, fmt.Errorf("shard: update function panicked on vertex %d: %v\n%s", p.vertex, p.value, p.stack)
			}
			res.Updates += int64(len(scheduled))

			written, err := e.flush(sub)
			if err != nil {
				return res, err
			}
			res.BytesWritten += written
		}
		if o := e.opts.Observer; o != nil {
			wall, wait := e.pool.TakeBarrierStats()
			o.Emit(obs.Event{
				Engine:           obs.EngineShard,
				Iter:             int64(res.Iterations),
				Scheduled:        int64(len(members)),
				Updates:          res.Updates - passUpdates,
				EdgeReads:        e.obsReads,
				EdgeWrites:       e.obsWrites,
				RWConflicts:      -1,
				WWConflicts:      -1,
				Residual:         float64(len(members)) / float64(e.st.N()),
				BarrierWaitNanos: int64(wait),
				DurationNanos:    int64(wall),
			})
			e.obsReads, e.obsWrites = 0, 0
		}
		res.Iterations++
		e.front.Advance()
	}
	res.Duration = time.Since(start)
	return res, nil
}

// loadedRange maps a slice of the in-memory value store back to its
// on-disk location.
type loadedRange struct {
	shard    int
	off      int64 // record offset within the shard
	count    int64
	slotBase uint32 // first slot in the combined store
}

// subgraph is interval i's in-memory working set.
type subgraph struct {
	interval  Interval
	store     edgedata.Store
	ranges    []loadedRange
	bytesRead int64
	// ends maps window slot s to its endpoints (ends[2s], ends[2s+1]);
	// built only under fault injection, for the heal hook.
	ends []uint32

	// Per local vertex adjacency: in-edges (from shard i) and out-edges
	// (from the windows).
	inSrc   [][]uint32
	inSlot  [][]uint32
	outDst  [][]uint32
	outSlot [][]uint32

	views []shardView
	eng   *Engine
}

// load builds interval i's subgraph from disk.
func (e *Engine) load(i int) (*subgraph, error) {
	iv := e.st.intervals[i]
	sub := &subgraph{
		interval: iv,
		eng:      e,
		inSrc:    make([][]uint32, iv.Len()),
		inSlot:   make([][]uint32, iv.Len()),
		outDst:   make([][]uint32, iv.Len()),
		outSlot:  make([][]uint32, iv.Len()),
	}

	// Plan the loads: shard i in full, plus interval i's window from
	// every other shard. The window of shard i over interval i is a
	// subrange of the full shard, so it is not loaded twice.
	var plan []loadedRange
	total := int64(0)
	fullShard := loadedRange{shard: i, off: 0, count: e.st.shards[i].Edges}
	fullShard.slotBase = 0
	total += fullShard.count
	plan = append(plan, fullShard)
	for k := range e.st.shards {
		if k == i {
			continue
		}
		w := e.st.shards[k].Windows[i]
		if w.Count == 0 {
			continue
		}
		plan = append(plan, loadedRange{shard: k, off: w.Off, count: w.Count, slotBase: uint32(total)})
		total += w.Count
	}

	sub.store = edgedata.New(e.opts.Mode, int(total))
	if e.opts.Inject != nil {
		sub.ends = make([]uint32, 2*total)
	}
	vals := make([]uint64, total)
	slot := int64(0)
	for _, r := range plan {
		recs, err := e.st.readRecords(r.shard, r.off, r.count)
		if err != nil {
			return nil, err
		}
		if err := e.st.readValues(r.shard, r.off, r.count, vals[slot:slot+r.count]); err != nil {
			return nil, err
		}
		sub.bytesRead += r.count * (recordBytes + valueBytes)
		// Index adjacency.
		isFull := r.shard == i
		for j := int64(0); j < r.count; j++ {
			src, dst := recs[2*j], recs[2*j+1]
			s := uint32(slot + j)
			if sub.ends != nil {
				sub.ends[2*s], sub.ends[2*s+1] = src, dst
			}
			if isFull {
				// In-edge of dst (dst ∈ interval i by shard invariant).
				lv := dst - iv.Lo
				sub.inSrc[lv] = append(sub.inSrc[lv], src)
				sub.inSlot[lv] = append(sub.inSlot[lv], s)
				// The diagonal block doubles as out-edges of interval i.
				if iv.Contains(src) {
					lo := src - iv.Lo
					sub.outDst[lo] = append(sub.outDst[lo], dst)
					sub.outSlot[lo] = append(sub.outSlot[lo], s)
				}
			} else {
				// Window record: out-edge of src (src ∈ interval i).
				lv := src - iv.Lo
				sub.outDst[lv] = append(sub.outDst[lv], dst)
				sub.outSlot[lv] = append(sub.outSlot[lv], s)
			}
		}
		slot += r.count
	}
	for j, v := range vals {
		sub.store.Store(uint32(j), v)
	}
	if inj := e.opts.Inject; inj != nil {
		// Wrap after the fill so the stale-read shadow seeds from the
		// loaded values, not zeros.
		sub.store = inj.Wrap(sub.store)
	}
	sub.ranges = plan
	sub.views = make([]shardView, e.opts.Threads)
	for w := range sub.views {
		sub.views[w].sub = sub
	}
	return sub, nil
}

// flush writes the working set's values back to their shards.
func (e *Engine) flush(sub *subgraph) (int64, error) {
	var written int64
	e.flushBuf = sub.store.SnapshotInto(e.flushBuf)
	snap := e.flushBuf
	for _, r := range sub.ranges {
		if err := e.st.writeValues(r.shard, r.off, r.count, snap[r.slotBase:int64(r.slotBase)+r.count]); err != nil {
			return written, err
		}
		written += r.count * valueBytes
	}
	return written, nil
}

// shardView adapts a loaded subgraph to core.VertexView.
type shardView struct {
	sub *subgraph
	v   uint32
	lv  uint32 // v - interval.Lo

	// nReads/nWrites count window-slot accesses for the observer;
	// worker-private, banked on the engine after each interval dispatch.
	nReads, nWrites int64
	// uWrites counts the bound update's writes for the execution-path
	// trace.
	uWrites int
}

func (c *shardView) bind(v uint32) {
	c.v = v
	c.lv = v - c.sub.interval.Lo
	c.uWrites = 0
}

func (c *shardView) V() uint32                { return c.v }
func (c *shardView) Vertex() uint64           { return c.sub.eng.st.Vertices[c.v] }
func (c *shardView) SetVertex(w uint64)       { c.sub.eng.st.Vertices[c.v] = w }
func (c *shardView) InDegree() int            { return len(c.sub.inSrc[c.lv]) }
func (c *shardView) OutDegree() int           { return len(c.sub.outDst[c.lv]) }
func (c *shardView) InNeighbor(k int) uint32  { return c.sub.inSrc[c.lv][k] }
func (c *shardView) OutNeighbor(k int) uint32 { return c.sub.outDst[c.lv][k] }

// InEdgeID and OutEdgeID return window-local slot ids; they are stable
// within one interval execution but NOT across iterations, so shard-based
// runs only suit algorithms without immutable per-edge side arrays (the
// canonical-index contract of the in-memory engine does not transfer).
func (c *shardView) InEdgeID(k int) uint32  { return c.sub.inSlot[c.lv][k] }
func (c *shardView) OutEdgeID(k int) uint32 { return c.sub.outSlot[c.lv][k] }

func (c *shardView) InEdgeVal(k int) uint64 {
	c.nReads++
	return c.sub.store.Load(c.sub.inSlot[c.lv][k])
}

func (c *shardView) OutEdgeVal(k int) uint64 {
	c.nReads++
	return c.sub.store.Load(c.sub.outSlot[c.lv][k])
}

func (c *shardView) SetInEdgeVal(k int, w uint64) {
	c.nWrites++
	c.uWrites++
	c.sub.store.Store(c.sub.inSlot[c.lv][k], w)
	c.sub.eng.front.Schedule(int(c.sub.inSrc[c.lv][k]))
}

func (c *shardView) SetOutEdgeVal(k int, w uint64) {
	c.nWrites++
	c.uWrites++
	c.sub.store.Store(c.sub.outSlot[c.lv][k], w)
	c.sub.eng.front.Schedule(int(c.sub.outDst[c.lv][k]))
}

func (c *shardView) ScheduleSelf() { c.sub.eng.front.Schedule(int(c.v)) }
func (c *shardView) Yield()        {}

var _ core.VertexView = (*shardView)(nil)
