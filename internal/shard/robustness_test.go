package shard

import (
	"context"
	"errors"
	"strings"
	"testing"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/fault"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
)

// initWCC seeds storage with the min-label initial state.
func initWCC(t *testing.T, st *Storage) {
	t.Helper()
	for v := range st.Vertices {
		st.Vertices[v] = uint64(v)
	}
	if err := st.FillValues(^uint64(0)); err != nil {
		t.Fatal(err)
	}
}

func rmatGraph(t *testing.T, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(400, 2400, gen.DefaultRMAT, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// The out-of-core engine under injection: window slots map back to endpoint
// reschedules through the current interval's working set, so Theorem 2's
// retry argument holds across interval loads — WCC must reconverge exactly.
func TestShardWCCReconvergesUnderInjection(t *testing.T) {
	g := rmatGraph(t, 31)
	want := algorithms.ReferenceWCC(g)
	var injected int64
	for _, seed := range []uint64{1, 2, 3} {
		inj := fault.MustInjector(fault.Plan{
			Seed:      seed,
			TornWrite: 0.02,
			DropWrite: 0.05,
			StaleRead: 0.05,
			MaxFaults: 5000,
		})
		st := buildStorage(t, g, 3)
		initWCC(t, st)
		e, err := NewEngine(st, Options{Threads: 2, Mode: edgedata.ModeAtomic, Inject: inj})
		if err != nil {
			t.Fatal(err)
		}
		e.Frontier().ScheduleAll()
		res, err := e.Run(minLabel)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: did not converge (%v)", seed, inj.Stats())
		}
		for v := range want {
			if uint32(st.Vertices[v]) != want[v] {
				t.Fatalf("seed %d (%v): vertex %d = %d, want %d",
					seed, inj.Stats(), v, st.Vertices[v], want[v])
			}
		}
		injected += inj.Stats().Total()
	}
	if injected == 0 {
		t.Fatal("no faults injected: the recovery test exercised nothing")
	}
}

// An injected crash mid-run leaves the flushed on-disk values as the
// recovery point; a fresh engine over the same storage finishes the job.
func TestShardCrashThenRerunRecovers(t *testing.T) {
	g := rmatGraph(t, 32)
	want := algorithms.ReferenceWCC(g)
	st := buildStorage(t, g, 3)
	initWCC(t, st)

	inj := fault.MustInjector(fault.Plan{CrashIter: 1})
	crash, err := NewEngine(st, Options{Threads: 2, Mode: edgedata.ModeAtomic, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	crash.Frontier().ScheduleAll()
	if _, err := crash.Run(minLabel); !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("crash run returned %v, want fault.ErrCrash", err)
	}

	resumed, err := NewEngine(st, Options{Threads: 2, Mode: edgedata.ModeAtomic})
	if err != nil {
		t.Fatal(err)
	}
	resumed.Frontier().ScheduleAll()
	res, err := resumed.Run(minLabel)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("rerun did not converge")
	}
	for v := range want {
		if uint32(st.Vertices[v]) != want[v] {
			t.Fatalf("vertex %d = %d after crash+rerun, want %d", v, st.Vertices[v], want[v])
		}
	}
}

func TestShardContextCancelledBeforeRun(t *testing.T) {
	g, _ := gen.Ring(64)
	st := buildStorage(t, g, 2)
	initWCC(t, st)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, err := NewEngine(st, Options{Threads: 1, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	e.Frontier().ScheduleAll()
	res, err := e.Run(minLabel)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Converged || res.Iterations != 0 {
		t.Fatalf("pre-cancelled run reported %+v", res)
	}
}

func TestShardUpdatePanicSurfacedAsError(t *testing.T) {
	g, _ := gen.Ring(64)
	st := buildStorage(t, g, 2)
	initWCC(t, st)
	e, err := NewEngine(st, Options{Threads: 2, Mode: edgedata.ModeAtomic})
	if err != nil {
		t.Fatal(err)
	}
	e.Frontier().ScheduleAll()
	_, err = e.Run(func(ctx core.VertexView) {
		if ctx.V() == 17 {
			panic("kaboom")
		}
		minLabel(ctx)
	})
	if err == nil {
		t.Fatal("panic not surfaced")
	}
	if !strings.Contains(err.Error(), "panicked on vertex 17") || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic error lacks context: %v", err)
	}
}

func TestShardStallWatchdogAbortsDivergentRun(t *testing.T) {
	g, _ := gen.Ring(16)
	st := buildStorage(t, g, 2)
	e, err := NewEngine(st, Options{Threads: 1, StallWindow: 3})
	if err != nil {
		t.Fatal(err)
	}
	e.Frontier().ScheduleAll()
	res, err := e.Run(func(ctx core.VertexView) { ctx.ScheduleSelf() })
	if !errors.Is(err, core.ErrStalled) {
		t.Fatalf("err = %v, want core.ErrStalled", err)
	}
	if res.Converged || res.Iterations > 10 {
		t.Fatalf("watchdog result %+v", res)
	}
}
