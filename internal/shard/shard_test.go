package shard

import (
	"math"
	"testing"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
)

func buildStorage(t *testing.T, g *graph.Graph, shards int) *Storage {
	t.Helper()
	st, err := Build(g, t.TempDir(), shards)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestBuildValidation(t *testing.T) {
	g, _ := gen.Ring(8)
	if _, err := Build(nil, t.TempDir(), 2); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Build(g, t.TempDir(), 0); err == nil {
		t.Error("zero shards accepted")
	}
	// More shards than vertices clamps.
	st := buildStorage(t, g, 100)
	if st.NumShards() > g.N() {
		t.Fatalf("shards = %d for %d vertices", st.NumShards(), g.N())
	}
}

func TestIntervalsPartition(t *testing.T) {
	g, err := gen.RMAT(500, 3000, gen.DefaultRMAT, 13)
	if err != nil {
		t.Fatal(err)
	}
	st := buildStorage(t, g, 4)
	ivs := st.Intervals()
	if len(ivs) != 4 {
		t.Fatalf("intervals = %d", len(ivs))
	}
	if ivs[0].Lo != 0 || ivs[len(ivs)-1].Hi != uint32(g.N()) {
		t.Fatalf("intervals don't span: %+v", ivs)
	}
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Lo != ivs[i-1].Hi {
			t.Fatalf("gap between intervals %d and %d: %+v", i-1, i, ivs)
		}
	}
	if st.M() != int64(g.M()) {
		t.Fatalf("sharded edges %d, graph has %d", st.M(), g.M())
	}
}

func TestIntervalOf(t *testing.T) {
	g, err := gen.RMAT(300, 1500, gen.DefaultRMAT, 14)
	if err != nil {
		t.Fatal(err)
	}
	st := buildStorage(t, g, 5)
	for v := uint32(0); int(v) < g.N(); v++ {
		i := st.intervalOf(v)
		if !st.intervals[i].Contains(v) {
			t.Fatalf("intervalOf(%d) = %d (%+v)", v, i, st.intervals[i])
		}
	}
}

func TestDiskUsageMatchesEdgeCount(t *testing.T) {
	g, err := gen.RMAT(200, 1000, gen.DefaultRMAT, 15)
	if err != nil {
		t.Fatal(err)
	}
	st := buildStorage(t, g, 3)
	usage, err := st.DiskUsage()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(g.M()) * (recordBytes + valueBytes)
	if usage != want {
		t.Fatalf("disk usage %d, want %d", usage, want)
	}
}

// minLabel re-implements the WCC update inline for direct engine-level
// testing without the algorithms wrapper.
func minLabel(ctx core.VertexView) {
	min := ctx.Vertex()
	for k := 0; k < ctx.InDegree(); k++ {
		if w := ctx.InEdgeVal(k); w < min {
			min = w
		}
	}
	for k := 0; k < ctx.OutDegree(); k++ {
		if w := ctx.OutEdgeVal(k); w < min {
			min = w
		}
	}
	ctx.SetVertex(min)
	for k := 0; k < ctx.InDegree(); k++ {
		if ctx.InEdgeVal(k) > min {
			ctx.SetInEdgeVal(k, min)
		}
	}
	for k := 0; k < ctx.OutDegree(); k++ {
		if ctx.OutEdgeVal(k) > min {
			ctx.SetOutEdgeVal(k, min)
		}
	}
}

func TestPSWWCCMatchesUnionFind(t *testing.T) {
	g, err := gen.RMAT(400, 2400, gen.DefaultRMAT, 16)
	if err != nil {
		t.Fatal(err)
	}
	want := algorithms.ReferenceWCC(g)
	for _, shards := range []int{1, 2, 4, 7} {
		st := buildStorage(t, g, shards)
		for v := range st.Vertices {
			st.Vertices[v] = uint64(v)
		}
		if err := st.FillValues(^uint64(0)); err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(st, Options{Threads: 2, Mode: edgedata.ModeAtomic})
		if err != nil {
			t.Fatal(err)
		}
		e.Frontier().ScheduleAll()
		res, err := e.Run(minLabel)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("shards=%d: did not converge", shards)
		}
		for v := range want {
			if uint32(st.Vertices[v]) != want[v] {
				t.Fatalf("shards=%d: vertex %d = %d, want %d", shards, v, st.Vertices[v], want[v])
			}
		}
		if res.BytesRead == 0 || res.BytesWritten == 0 {
			t.Fatalf("shards=%d: no I/O accounted: %+v", shards, res)
		}
	}
}

func TestPSWBFSMatchesReference(t *testing.T) {
	g, err := gen.Grid(10, 10, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := buildStorage(t, g, 3)
	inf := math.Float64bits(math.Inf(1))
	for v := range st.Vertices {
		st.Vertices[v] = inf
	}
	st.Vertices[0] = math.Float64bits(0)
	if err := st.FillValues(inf); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(st, Options{Threads: 2, Mode: edgedata.ModeAtomic})
	if err != nil {
		t.Fatal(err)
	}
	e.Frontier().ScheduleNow(0)
	// BFS relaxation with unit weights, written against the view API.
	update := func(ctx core.VertexView) {
		d := math.Float64frombits(ctx.Vertex())
		for k := 0; k < ctx.InDegree(); k++ {
			if c := math.Float64frombits(ctx.InEdgeVal(k)); c < d {
				d = c
			}
		}
		ctx.SetVertex(math.Float64bits(d))
		if math.IsInf(d, 1) {
			return
		}
		for k := 0; k < ctx.OutDegree(); k++ {
			cand := d + 1
			if cand < math.Float64frombits(ctx.OutEdgeVal(k)) {
				ctx.SetOutEdgeVal(k, math.Float64bits(cand))
			}
		}
	}
	res, err := e.Run(update)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for r := 0; r < 10; r++ {
		for c := 0; c < 10; c++ {
			got := math.Float64frombits(st.Vertices[r*10+c])
			if got != float64(r+c) {
				t.Fatalf("dist[%d,%d] = %v, want %d", r, c, got, r+c)
			}
		}
	}
}

func TestPSWPageRankCloseToReference(t *testing.T) {
	g, err := gen.RMAT(300, 1800, gen.DefaultRMAT, 17)
	if err != nil {
		t.Fatal(err)
	}
	st := buildStorage(t, g, 4)
	const eps, damping = 1e-6, 0.85
	for v := range st.Vertices {
		st.Vertices[v] = math.Float64bits(1.0)
	}
	outDeg := make([]int, g.N())
	for v := uint32(0); int(v) < g.N(); v++ {
		outDeg[v] = g.OutDegree(v)
	}
	if err := st.SetEdgeValues(func(src, _ uint32) uint64 {
		return math.Float64bits(1.0 / float64(outDeg[src]))
	}); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(st, Options{Threads: 2, Mode: edgedata.ModeAtomic})
	if err != nil {
		t.Fatal(err)
	}
	e.Frontier().ScheduleAll()
	update := func(ctx core.VertexView) {
		sum := 0.0
		for k := 0; k < ctx.InDegree(); k++ {
			sum += math.Float64frombits(ctx.InEdgeVal(k))
		}
		old := math.Float64frombits(ctx.Vertex())
		rank := (1 - damping) + damping*sum
		ctx.SetVertex(math.Float64bits(rank))
		if math.Abs(rank-old) < eps {
			return
		}
		if out := ctx.OutDegree(); out > 0 {
			w := math.Float64bits(rank / float64(out))
			for k := 0; k < out; k++ {
				ctx.SetOutEdgeVal(k, w)
			}
		}
	}
	res, err := e.Run(update)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	want := algorithms.ReferencePageRank(g, damping, 1e-10, 10000)
	for v := range want {
		got := math.Float64frombits(st.Vertices[v])
		if math.Abs(got-want[v]) > 1e-3 {
			t.Fatalf("rank[%d] = %v, want %v", v, got, want[v])
		}
	}
}

func TestEngineValidation(t *testing.T) {
	g, _ := gen.Ring(8)
	st := buildStorage(t, g, 2)
	if _, err := NewEngine(nil, Options{}); err == nil {
		t.Error("nil storage accepted")
	}
	if _, err := NewEngine(st, Options{Threads: 4, Mode: edgedata.ModeSequential}); err == nil {
		t.Error("parallel sequential mode accepted")
	}
	e, err := NewEngine(st, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(nil); err == nil {
		t.Error("nil update accepted")
	}
}

func TestEmptyFrontierConverges(t *testing.T) {
	g, _ := gen.Ring(8)
	st := buildStorage(t, g, 2)
	e, err := NewEngine(st, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(minLabel)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Updates != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestMaxItersCap(t *testing.T) {
	g, _ := gen.Ring(64)
	st := buildStorage(t, g, 2)
	for v := range st.Vertices {
		st.Vertices[v] = uint64(v)
	}
	if err := st.FillValues(^uint64(0)); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(st, Options{Threads: 1, MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Frontier().ScheduleAll()
	res, err := e.Run(minLabel)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Iterations != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestValuesPersistAcrossEngines(t *testing.T) {
	// Run WCC halfway, build a new engine over the same storage, finish:
	// on-disk values carry the intermediate state.
	g, err := gen.Ring(128)
	if err != nil {
		t.Fatal(err)
	}
	st := buildStorage(t, g, 3)
	for v := range st.Vertices {
		st.Vertices[v] = uint64(v)
	}
	if err := st.FillValues(^uint64(0)); err != nil {
		t.Fatal(err)
	}
	e1, err := NewEngine(st, Options{Threads: 1, MaxIters: 2})
	if err != nil {
		t.Fatal(err)
	}
	e1.Frontier().ScheduleAll()
	if _, err := e1.Run(minLabel); err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(st, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	e2.Frontier().ScheduleAll()
	res, err := e2.Run(minLabel)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("resumed run did not converge")
	}
	for v, w := range st.Vertices {
		if w != 0 {
			t.Fatalf("vertex %d = %d after resume", v, w)
		}
	}
}

func BenchmarkPSWWCC(b *testing.B) {
	g, err := gen.RMAT(1000, 8000, gen.DefaultRMAT, 18)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	st, err := Build(g, dir, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := range st.Vertices {
			st.Vertices[v] = uint64(v)
		}
		if err := st.FillValues(^uint64(0)); err != nil {
			b.Fatal(err)
		}
		e, err := NewEngine(st, Options{Threads: 2, Mode: edgedata.ModeAtomic})
		if err != nil {
			b.Fatal(err)
		}
		e.Frontier().ScheduleAll()
		if _, err := e.Run(minLabel); err != nil {
			b.Fatal(err)
		}
	}
}
