// Package shard implements a GraphChi-style out-of-core storage and
// execution layer: the Parallel Sliding Windows (PSW) scheme of Kyrola,
// Blelloch & Guestrin (OSDI'12), the system the paper hosts its
// experiments on.
//
// Vertices are split into K intervals balanced by in-edge count. Shard k
// stores, on disk, every edge whose destination lies in interval k,
// sorted by source; a parallel value file stores each edge's mutable
// 64-bit data word. Because shards are source-sorted, the out-edges of
// interval i form one contiguous *window* in every shard, so executing
// interval i requires reading shard i in full (the in-edges) plus one
// window from each other shard (the out-edges) — K sequential reads
// instead of random access.
//
// The paper notes GraphChi's in-memory footprint was small enough that
// its graphs stayed resident; this package exists to reproduce the host
// system faithfully and to let the framework run graphs larger than
// memory. Within an interval, scheduled updates execute under the same
// nondeterministic block dispatch and per-operation atomicity modes as
// the in-memory engine, so the paper's eligibility results carry over
// unchanged.
package shard

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ndgraph/internal/fsafe"
	"ndgraph/internal/graph"
)

const (
	recordBytes = 8 // src uint32 + dst uint32
	valueBytes  = 8 // one uint64 data word
)

// Interval is a half-open vertex range [Lo, Hi).
type Interval struct {
	Lo, Hi uint32
}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v uint32) bool { return v >= iv.Lo && v < iv.Hi }

// Len returns the number of vertices in the interval.
func (iv Interval) Len() int { return int(iv.Hi - iv.Lo) }

// window is the contiguous record range of one source interval within a
// shard: records [Off, Off+Count) of the shard hold the edges with
// src ∈ that interval.
type window struct {
	Off   int64 // record index within the shard
	Count int64
}

// shardMeta describes one on-disk shard.
type shardMeta struct {
	Edges   int64
	Windows []window // indexed by source interval
}

// Storage is an on-disk sharded graph plus its execution metadata.
type Storage struct {
	dir       string
	n         int
	intervals []Interval
	shards    []shardMeta

	// Vertex data stays in memory, as in GraphChi.
	Vertices []uint64
}

// Build shards g into dir (created if needed) with numShards intervals
// balanced by in-edge count, and zero-initialized edge values.
func Build(g *graph.Graph, dir string, numShards int) (*Storage, error) {
	if g == nil {
		return nil, fmt.Errorf("shard: nil graph")
	}
	if numShards < 1 {
		return nil, fmt.Errorf("shard: need at least one shard (got %d)", numShards)
	}
	if numShards > g.N() && g.N() > 0 {
		numShards = g.N()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	s := &Storage{
		dir:      dir,
		n:        g.N(),
		Vertices: make([]uint64, g.N()),
	}
	s.intervals = balanceIntervals(g, numShards)

	// Emit each shard: edges with dst in the interval, sorted by (src,
	// dst). The canonical edge order of graph.Graph is (src, dst)-sorted,
	// so walking vertices in order and filtering by dst-interval yields
	// records already in shard order. Both files land atomically (temp +
	// rename via fsafe), so an interrupted Build never leaves a
	// half-written shard under its final name.
	for k, iv := range s.intervals {
		meta := shardMeta{Windows: make([]window, len(s.intervals))}
		err := fsafe.WriteFile(s.edgePath(k), func(w io.Writer) error {
			srcInterval := 0
			for v := uint32(0); int(v) < g.N(); v++ {
				for srcInterval+1 < len(s.intervals) && v >= s.intervals[srcInterval].Hi {
					srcInterval++
				}
				for _, d := range g.OutNeighbors(v) {
					if !iv.Contains(d) {
						continue
					}
					if meta.Windows[srcInterval].Count == 0 {
						meta.Windows[srcInterval].Off = meta.Edges
					}
					meta.Windows[srcInterval].Count++
					var rec [recordBytes]byte
					binary.LittleEndian.PutUint32(rec[0:4], v)
					binary.LittleEndian.PutUint32(rec[4:8], d)
					if _, err := w.Write(rec[:]); err != nil {
						return err
					}
					meta.Edges++
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Zero value file of matching length.
		err = fsafe.WriteFile(s.valuePath(k), func(w io.Writer) error {
			zeros := make([]byte, 1<<16)
			for left := meta.Edges * valueBytes; left > 0; {
				n := int64(len(zeros))
				if n > left {
					n = left
				}
				if _, err := w.Write(zeros[:n]); err != nil {
					return err
				}
				left -= n
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, meta)
	}
	return s, nil
}

// balanceIntervals splits vertices into numShards intervals with roughly
// equal in-edge counts (GraphChi's balancing criterion: shard sizes).
func balanceIntervals(g *graph.Graph, numShards int) []Interval {
	n := g.N()
	if n == 0 {
		return []Interval{{0, 0}}
	}
	m := g.M()
	target := (m + numShards - 1) / numShards
	intervals := make([]Interval, 0, numShards)
	lo := uint32(0)
	acc := 0
	for v := uint32(0); int(v) < n; v++ {
		acc += g.InDegree(v)
		remainingShards := numShards - len(intervals)
		remainingVerts := n - int(v) - 1
		if (acc >= target || remainingVerts < remainingShards-1) && len(intervals) < numShards-1 {
			intervals = append(intervals, Interval{lo, v + 1})
			lo = v + 1
			acc = 0
		}
	}
	intervals = append(intervals, Interval{lo, uint32(n)})
	return intervals
}

// NumShards returns the shard (and interval) count.
func (s *Storage) NumShards() int { return len(s.intervals) }

// Intervals returns the vertex intervals.
func (s *Storage) Intervals() []Interval { return s.intervals }

// N returns the vertex count.
func (s *Storage) N() int { return s.n }

// M returns the total edge count across shards.
func (s *Storage) M() int64 {
	var total int64
	for _, sh := range s.shards {
		total += sh.Edges
	}
	return total
}

func (s *Storage) edgePath(k int) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%03d.edges", k))
}

func (s *Storage) valuePath(k int) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%03d.values", k))
}

// intervalOf returns the interval index containing v.
func (s *Storage) intervalOf(v uint32) int {
	lo, hi := 0, len(s.intervals)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.intervals[mid].Hi <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// readRecords reads count edge records of shard k starting at record off.
func (s *Storage) readRecords(k int, off, count int64) ([]uint32, error) {
	if count == 0 {
		return nil, nil
	}
	f, err := os.Open(s.edgePath(k))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, count*recordBytes)
	if _, err := f.ReadAt(buf, off*recordBytes); err != nil {
		return nil, fmt.Errorf("shard: reading %s records [%d,%d): %w", s.edgePath(k), off, off+count, err)
	}
	out := make([]uint32, 2*count)
	for i := int64(0); i < 2*count; i++ {
		out[i] = binary.LittleEndian.Uint32(buf[i*4 : i*4+4])
	}
	return out, nil
}

// readValues reads count edge values of shard k starting at record off.
func (s *Storage) readValues(k int, off, count int64, dst []uint64) error {
	if count == 0 {
		return nil
	}
	f, err := os.Open(s.valuePath(k))
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, count*valueBytes)
	if _, err := f.ReadAt(buf, off*valueBytes); err != nil {
		return fmt.Errorf("shard: reading %s values: %w", s.valuePath(k), err)
	}
	for i := int64(0); i < count; i++ {
		dst[i] = binary.LittleEndian.Uint64(buf[i*8 : i*8+8])
	}
	return nil
}

// writeValues writes count edge values of shard k starting at record off.
func (s *Storage) writeValues(k int, off, count int64, src []uint64) error {
	if count == 0 {
		return nil
	}
	f, err := os.OpenFile(s.valuePath(k), os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, count*valueBytes)
	for i := int64(0); i < count; i++ {
		binary.LittleEndian.PutUint64(buf[i*8:i*8+8], src[i])
	}
	if _, err := f.WriteAt(buf, off*valueBytes); err != nil {
		return fmt.Errorf("shard: writing %s values: %w", s.valuePath(k), err)
	}
	return nil
}

// FillValues sets every edge value in every shard to w (algorithm
// initialization, e.g. +Inf for SSSP or ^0 for WCC).
func (s *Storage) FillValues(w uint64) error {
	for k := range s.shards {
		count := s.shards[k].Edges
		if count == 0 {
			continue
		}
		vals := make([]uint64, count)
		for i := range vals {
			vals[i] = w
		}
		if err := s.writeValues(k, 0, count, vals); err != nil {
			return err
		}
	}
	return nil
}

// SetEdgeValues initializes edge values from a function of the edge's
// endpoints, streaming shard by shard (used by Setup adapters:
// fn(src, dst) returns the initial data word of edge src→dst).
func (s *Storage) SetEdgeValues(fn func(src, dst uint32) uint64) error {
	for k := range s.shards {
		count := s.shards[k].Edges
		if count == 0 {
			continue
		}
		recs, err := s.readRecords(k, 0, count)
		if err != nil {
			return err
		}
		vals := make([]uint64, count)
		for i := int64(0); i < count; i++ {
			vals[i] = fn(recs[2*i], recs[2*i+1])
		}
		if err := s.writeValues(k, 0, count, vals); err != nil {
			return err
		}
	}
	return nil
}

// DiskUsage returns the total bytes of all shard files.
func (s *Storage) DiskUsage() (int64, error) {
	var total int64
	for k := range s.shards {
		for _, p := range []string{s.edgePath(k), s.valuePath(k)} {
			fi, err := os.Stat(p)
			if err != nil {
				return 0, err
			}
			total += fi.Size()
		}
	}
	return total, nil
}
