//go:build !race

package ndgraph_test

// raceEnabled mirrors the race build tag for benchmark configuration.
const raceEnabled = false
