// Facade tests: exercise the public ndgraph API end-to-end, exactly as a
// downstream user would.
package ndgraph_test

import (
	"math"
	"testing"

	"ndgraph"
)

func TestFacadeGenerators(t *testing.T) {
	g, err := ndgraph.GenRMAT(256, 1500, ndgraph.DefaultRMAT, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 256 {
		t.Fatalf("N = %d", g.N())
	}
	pa, err := ndgraph.GenPreferentialAttachment(100, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pa.ComputeStats().MaxInDeg < 3 {
		t.Fatal("preferential attachment produced no hubs")
	}
}

func TestFacadeBuildAndRun(t *testing.T) {
	edges := []ndgraph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}}
	g, err := ndgraph.BuildGraph(edges, ndgraph.GraphOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wcc := ndgraph.NewWCC()
	eng, res, err := ndgraph.Run(wcc, g, ndgraph.Options{
		Scheduler: ndgraph.Nondeterministic,
		Threads:   2,
		Mode:      ndgraph.ModeAtomic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	labels := wcc.Components(eng)
	for v, l := range labels {
		if l != 0 {
			t.Fatalf("vertex %d label %d", v, l)
		}
	}
}

func TestFacadeProbeAndAdvise(t *testing.T) {
	g, err := ndgraph.Synthesize(ndgraph.WebGoogle, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, verdict, err := ndgraph.Probe(ndgraph.NewWCC(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !verdict.Eligible || verdict.Theorem != 2 {
		t.Fatalf("verdict = %+v", verdict)
	}
	// Direct Advise usage.
	v := ndgraph.Advise(ndgraph.Properties{
		Name: "custom", ConvergesSynchronously: true,
	}, ndgraph.ConflictProfile{RW: 10})
	if !v.Eligible || v.Theorem != 1 {
		t.Fatalf("Advise = %+v", v)
	}
}

func TestFacadePageRankMetrics(t *testing.T) {
	g, err := ndgraph.Synthesize(ndgraph.WebGoogle, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	pr := ndgraph.NewPageRank(1e-3)
	eng, _, err := ndgraph.Run(pr, g, ndgraph.Options{Scheduler: ndgraph.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	ranks := pr.Ranks(eng)
	order := ndgraph.RankOrder(ranks)
	if len(order) != g.N() {
		t.Fatalf("order length %d", len(order))
	}
	if ndgraph.DifferenceDegree(order, order) != len(order) {
		t.Fatal("self difference degree should be the full length")
	}
}

func TestFacadeCustomUpdateFunc(t *testing.T) {
	// A user-written algorithm against the raw engine API: count each
	// vertex's in-degree by propagating ones along edges.
	g, err := ndgraph.BuildGraph([]ndgraph.Edge{{Src: 0, Dst: 2}, {Src: 1, Dst: 2}}, ndgraph.GraphOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ndgraph.NewEngine(g, ndgraph.Options{Scheduler: ndgraph.Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	eng.Frontier().ScheduleAll()
	update := func(ctx ndgraph.VertexView) {
		var sum uint64
		for k := 0; k < ctx.InDegree(); k++ {
			sum += ctx.InEdgeVal(k)
		}
		ctx.SetVertex(sum)
		for k := 0; k < ctx.OutDegree(); k++ {
			if ctx.OutEdgeVal(k) != 1 {
				ctx.SetOutEdgeVal(k, 1)
			}
		}
	}
	res, err := eng.Run(update)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if eng.Vertices[2] != 2 {
		t.Fatalf("vertex 2 counted %d in-edges", eng.Vertices[2])
	}
}

func TestFacadePushAndAsync(t *testing.T) {
	g, err := ndgraph.GenGrid(8, 8, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	dist, res, err := ndgraph.PushBFS(g, 0, ndgraph.PushModeCAS, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("push BFS did not converge")
	}
	if dist[63] != 14 {
		t.Fatalf("corner distance = %v", dist[63])
	}
	// Async executor via LoadFrom.
	bfs := ndgraph.NewBFS(g, 0)
	seedEng, err := ndgraph.NewEngine(g, ndgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bfs.Setup(seedEng)
	x, err := ndgraph.NewAsyncExecutor(g, ndgraph.AsyncOptions{Threads: 2, Mode: ndgraph.ModeAtomic})
	if err != nil {
		t.Fatal(err)
	}
	if err := x.LoadFrom(seedEng); err != nil {
		t.Fatal(err)
	}
	ares, err := x.Run(bfs.Update)
	if err != nil {
		t.Fatal(err)
	}
	if !ares.Converged {
		t.Fatal("async BFS did not converge")
	}
	if math.Float64frombits(x.Vertices[63]) != 14 {
		t.Fatalf("async corner distance = %v", math.Float64frombits(x.Vertices[63]))
	}
}

func TestFacadeGraphIO(t *testing.T) {
	dir := t.TempDir()
	g, err := ndgraph.GenErdosRenyi(50, 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	path := dir + "/g.bin"
	if err := ndgraph.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ndgraph.LoadGraph(path, ndgraph.GraphOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatal("round trip size mismatch")
	}
}
