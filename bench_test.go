// Top-level benchmark harness: one benchmark family per table and figure
// of the paper's evaluation (Section V), backed by internal/experiments.
// Run the full grid with:
//
//	go test -bench=. -benchmem
//
// and regenerate the paper-style tables with the ndbench CLI. Benchmarks
// use a larger scale divisor than the CLI so `go test -bench` stays quick;
// pass -scale to ndbench for bigger runs.
package ndgraph_test

import (
	"context"
	"fmt"
	"io"
	"testing"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/async"
	"ndgraph/internal/autonomous"
	"ndgraph/internal/core"
	"ndgraph/internal/dist"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/experiments"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/hybrid"
	"ndgraph/internal/obs"
	"ndgraph/internal/push"
	"ndgraph/internal/sched"
	"ndgraph/internal/shard"
)

// benchConfig is the scaled-down experiment configuration for testing.B.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Scale = 200 // a few thousand vertices per graph
	cfg.Threads = []int{1, 2, 4, 8, 16}
	cfg.Runs = 3
	return cfg
}

// benchGraphs caches the synthesized Table I analogs across benchmarks.
var benchGraphs map[string]*graph.Graph

func getGraphs(b *testing.B) map[string]*graph.Graph {
	b.Helper()
	if benchGraphs == nil {
		gs, err := experiments.Graphs(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		benchGraphs = gs
	}
	return benchGraphs
}

// BenchmarkTable1GraphGeneration regenerates the Table I inventory: the
// cost of synthesizing each dataset analog.
func BenchmarkTable1GraphGeneration(b *testing.B) {
	cfg := benchConfig()
	for _, d := range gen.AllDatasets() {
		b.Run(d.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gen.Synthesize(d, cfg.Scale, cfg.Seed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3 regenerates the Fig. 3 grid: computing time of each
// algorithm on each graph under DE and NE×{lock, arch, atomic}×threads.
// Sub-benchmark names follow Fig3/<graph>/<algo>/<exec>/P<threads>.
func BenchmarkFig3(b *testing.B) {
	cfg := benchConfig()
	gs := getGraphs(b)
	for _, d := range gen.AllDatasets() {
		g := gs[d.String()]
		for _, algoName := range experiments.AlgoNames() {
			for _, kind := range experiments.ExecKinds(!raceEnabled) {
				threads := cfg.Threads
				if kind.Scheduler == sched.Deterministic {
					threads = []int{1}
				}
				for _, p := range threads {
					name := fmt.Sprintf("%s/%s/%s/P%d", d, algoName, kind.Label, p)
					b.Run(name, func(b *testing.B) {
						for i := 0; i < b.N; i++ {
							a, err := experiments.NewAlgorithm(algoName, g, cfg)
							if err != nil {
								b.Fatal(err)
							}
							_, res, err := algorithms.Run(a, g, core.Options{
								Scheduler: kind.Scheduler, Threads: p, Mode: kind.Mode,
							})
							if err != nil {
								b.Fatal(err)
							}
							if !res.Converged {
								b.Fatal("did not converge")
							}
						}
					})
				}
			}
		}
	}
}

// BenchmarkTable2DifferenceDegree regenerates the Table II statistic: the
// cost of one full same-configuration variance measurement (5 PageRank
// runs + pairwise difference degrees) per configuration.
func BenchmarkTable2DifferenceDegree(b *testing.B) {
	cfg := benchConfig()
	gs := getGraphs(b)
	g := gs["web-google"]
	for _, conf := range []struct {
		name          string
		threads       int
		deterministic bool
	}{
		{"DE", 1, true}, {"4NE", 4, false}, {"8NE", 8, false}, {"16NE", 16, false},
	} {
		b.Run(conf.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ords, err := experiments.RankOrderings(g, 1e-2, conf.threads, conf.deterministic, cfg.Runs)
				if err != nil {
					b.Fatal(err)
				}
				if len(ords) != cfg.Runs {
					b.Fatal("missing runs")
				}
			}
		})
	}
}

// BenchmarkTable3CrossConfig regenerates the Table III statistic: variance
// between one DE run group and one 16NE run group.
func BenchmarkTable3CrossConfig(b *testing.B) {
	cfg := benchConfig()
	gs := getGraphs(b)
	g := gs["web-google"]
	for i := 0; i < b.N; i++ {
		de, err := experiments.RankOrderings(g, 1e-2, 1, true, 2)
		if err != nil {
			b.Fatal(err)
		}
		ne, err := experiments.RankOrderings(g, 1e-2, 16, false, 2)
		if err != nil {
			b.Fatal(err)
		}
		_ = de
		_ = ne
	}
	_ = cfg
}

// BenchmarkConflictCensus regenerates the extension conflict-census table:
// a potential-census probe of each algorithm on the web-google analog.
func BenchmarkConflictCensus(b *testing.B) {
	cfg := benchConfig()
	gs := getGraphs(b)
	g := gs["web-google"]
	for _, name := range append(experiments.AlgoNames(), "spmv", "coloring") {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := experiments.NewAlgorithm(name, g, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := algorithms.Probe(a, g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConvergenceSpeed regenerates the extension iteration-count
// comparison (sync vs det-async vs nondet) for WCC on each graph.
func BenchmarkConvergenceSpeed(b *testing.B) {
	cfg := benchConfig()
	gs := getGraphs(b)
	for _, d := range gen.AllDatasets() {
		g := gs[d.String()]
		for _, s := range []sched.Kind{sched.Synchronous, sched.Deterministic, sched.Nondeterministic} {
			b.Run(fmt.Sprintf("%s/%s", d, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					a, err := experiments.NewAlgorithm("wcc", g, cfg)
					if err != nil {
						b.Fatal(err)
					}
					opts := core.Options{Scheduler: s, Threads: 4, Mode: edgedata.ModeAtomic}
					if s == sched.Deterministic {
						opts = core.Options{Scheduler: s}
					}
					if _, _, err := algorithms.Run(a, g, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationDispatch measures the static-vs-dynamic dispatch
// ablation (DESIGN.md S20) on the skewed web-berkstan analog.
func BenchmarkAblationDispatch(b *testing.B) {
	cfg := benchConfig()
	gs := getGraphs(b)
	g := gs["web-berkstan"]
	for _, d := range []sched.Dispatch{sched.Static, sched.Dynamic} {
		b.Run(d.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := experiments.NewAlgorithm("wcc", g, cfg)
				if err != nil {
					b.Fatal(err)
				}
				_, res, err := algorithms.Run(a, g, core.Options{
					Scheduler: sched.Nondeterministic, Threads: 4,
					Mode: edgedata.ModeAtomic, Dispatch: d,
				})
				if err != nil || !res.Converged {
					b.Fatal("run failed")
				}
			}
		})
	}
}

// BenchmarkAblationLabelOrder measures the label-order ablation: the same
// graph relabeled naturally, hubs-first, and hubs-interleaved.
func BenchmarkAblationLabelOrder(b *testing.B) {
	cfg := benchConfig()
	gs := getGraphs(b)
	base := gs["web-berkstan"]
	variants := map[string]*graph.Graph{"natural": base}
	if hubFirst, err := graph.Relabel(base, graph.DegreeDescOrder(base)); err == nil {
		variants["degree-desc"] = hubFirst
	}
	if inter, err := graph.Relabel(base, graph.DegreeInterleaveOrder(base, 4)); err == nil {
		variants["degree-interleave"] = inter
	}
	for name, g := range variants {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := experiments.NewAlgorithm("wcc", g, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := algorithms.Run(a, g, core.Options{
					Scheduler: sched.Nondeterministic, Threads: 4, Mode: edgedata.ModeAtomic,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPSWOutOfCore measures the sharded (GraphChi PSW) engine
// against the in-memory result baseline from BenchmarkFig3.
func BenchmarkPSWOutOfCore(b *testing.B) {
	gs := getGraphs(b)
	g := gs["web-google"]
	dir := b.TempDir()
	st, err := shard.Build(g, dir, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := range st.Vertices {
			st.Vertices[v] = uint64(v)
		}
		if err := st.FillValues(^uint64(0)); err != nil {
			b.Fatal(err)
		}
		e, err := shard.NewEngine(st, shard.Options{Threads: 2, Mode: edgedata.ModeAtomic})
		if err != nil {
			b.Fatal(err)
		}
		e.Frontier().ScheduleAll()
		wcc := algorithms.NewWCC()
		if _, err := e.Run(wcc.Update); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistributedWCC measures the message-passing simulator.
func BenchmarkDistributedWCC(b *testing.B) {
	gs := getGraphs(b)
	g := gs["web-google"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dist.WCC(g, dist.Options{Workers: 4, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// hotPathUpdate re-schedules every vertex so a Run capped at b.N iterations
// exercises exactly b.N trips through the dispatch machinery — frontier
// rebuild, (for Synchronous) edge snapshot, pool barrier, update calls.
func hotPathUpdate(ctx core.VertexView) {
	ctx.SetVertex(ctx.Vertex())
	ctx.ScheduleSelf()
}

// BenchmarkHotPathIteration measures the per-iteration cost of the engine's
// steady-state dispatch path; with -benchmem the B/op and allocs/op columns
// certify the allocation-free hot path (the persistent worker pool, reused
// snapshot buffers, and deferred frontier rebuild).
func BenchmarkHotPathIteration(b *testing.B) {
	gs := getGraphs(b)
	g := gs["web-google"]
	mode := edgedata.ModeAligned
	if raceEnabled {
		mode = edgedata.ModeAtomic
	}
	// The observed variants run the full enabled telemetry path (per-
	// iteration Emit through a JSONL sink into io.Discard, barrier timing
	// on); the issue's budget allows them <5% updates/s regression against
	// their unobserved twins.
	newObserved := func() *obs.Observer {
		o := obs.New(obs.Options{})
		o.AttachSink(obs.NewJSONLSink(io.Discard))
		return o
	}
	cases := []struct {
		name string
		opts core.Options
	}{
		{"det", core.Options{Scheduler: sched.Deterministic}},
		{"nondet-static/P4", core.Options{Scheduler: sched.Nondeterministic, Dispatch: sched.Static, Threads: 4, Mode: mode}},
		{"nondet-dynamic/P4", core.Options{Scheduler: sched.Nondeterministic, Dispatch: sched.Dynamic, Threads: 4, Mode: mode}},
		{"sync/P4", core.Options{Scheduler: sched.Synchronous, Threads: 4, Mode: mode}},
		{"det-observed", core.Options{Scheduler: sched.Deterministic, Observer: newObserved()}},
		{"nondet-static-observed/P4", core.Options{Scheduler: sched.Nondeterministic, Dispatch: sched.Static, Threads: 4, Mode: mode, Observer: newObserved()}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			opts := tc.opts
			opts.MaxIters = b.N
			e, err := core.NewEngine(g, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			e.Frontier().ScheduleAll()
			b.ReportAllocs()
			b.ResetTimer()
			res, err := e.Run(hotPathUpdate)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Updates)/b.Elapsed().Seconds(), "updates/s")
		})
	}
}

// BenchmarkAutonomousVsCoordinatedSSSP contrasts the two scheduling
// categories of the paper's Section I on the same SSSP instance.
func BenchmarkAutonomousVsCoordinatedSSSP(b *testing.B) {
	gs := getGraphs(b)
	g := gs["web-google"]
	src := experiments.PickSource(g)
	s := algorithms.NewSSSP(g, src, 9)
	b.Run("coordinated-det", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := algorithms.Run(s, g, core.Options{Scheduler: sched.Deterministic}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("autonomous-dijkstra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := autonomous.SSSP(g, src, s.Weights); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBFSEngines races every BFS-capable in-memory executor on the
// same single-source instance per benchmark graph: the sequential
// deterministic core, the parallel nondeterministic core, the barrier-free
// async executor, the push (Ligra-style) engine, and the direction-
// optimizing hybrid engine — the acceptance pipeline for the hybrid
// engine's "beats the best existing engine" criterion (BENCH_PR7.json).
// Each iteration is a full build-and-run so setup costs land on every
// contender equally.
func BenchmarkBFSEngines(b *testing.B) {
	gs := getGraphs(b)
	mode := edgedata.ModeAligned
	if raceEnabled {
		mode = edgedata.ModeAtomic
	}
	const threads = 4
	for _, d := range gen.AllDatasets() {
		g := gs[d.String()]
		src := experiments.PickSource(g)
		run := func(b *testing.B, opts core.Options) {
			b.Helper()
			for i := 0; i < b.N; i++ {
				a := algorithms.NewBFS(g, src)
				_, res, err := algorithms.Run(a, g, opts)
				if err != nil || !res.Converged {
					b.Fatalf("run: %v", err)
				}
			}
		}
		b.Run(fmt.Sprintf("%s/core-det", d), func(b *testing.B) {
			run(b, core.Options{Scheduler: sched.Deterministic})
		})
		b.Run(fmt.Sprintf("%s/core-nondet/P%d", d, threads), func(b *testing.B) {
			run(b, core.Options{Scheduler: sched.Nondeterministic, Threads: threads, Mode: mode})
		})
		b.Run(fmt.Sprintf("%s/async/P%d", d, threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := algorithms.NewBFS(g, src)
				seed, err := core.NewEngine(g, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				a.Setup(seed)
				x, err := async.NewExecutor(g, async.Options{Threads: threads, Mode: edgedata.ModeAtomic})
				if err != nil {
					b.Fatal(err)
				}
				if err := x.LoadFrom(seed); err != nil {
					b.Fatal(err)
				}
				res, err := x.Run(a.Update)
				x.Close()
				if err != nil || !res.Converged {
					b.Fatalf("async: %v", err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/push/P%d", d, threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, res, err := push.BFS(g, src, push.ModeCAS, threads)
				if err != nil || !res.Converged {
					b.Fatalf("push: %v", err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/hybrid/P%d", d, threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := hybrid.NewEngine(g, threads)
				if err != nil {
					b.Fatal(err)
				}
				res, err := e.Run(context.Background(), algorithms.BFSKernel(src))
				e.Close()
				if err != nil || !res.Converged {
					b.Fatalf("hybrid: %v", err)
				}
			}
		})
	}
}

// BenchmarkNoSyncEngines is the acceptance pipeline for the work-stealing
// no-sync tier (BENCH_PR8.json): WCC — every vertex seeded, maximal
// scheduling traffic — through the channel-based async executor and the
// work-stealing executor at 8 threads on each benchmark graph, alongside
// the parallel core engine for context. The channel executor serializes
// every schedule and receive through one channel; the per-worker deques
// must beat it on at least 3 of the 4 graphs.
func BenchmarkNoSyncEngines(b *testing.B) {
	gs := getGraphs(b)
	const threads = 8
	for _, d := range gen.AllDatasets() {
		g := gs[d.String()]
		b.Run(fmt.Sprintf("%s/core-nondet/P%d", d, threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := algorithms.NewWCC()
				_, res, err := algorithms.Run(a, g, core.Options{
					Scheduler: sched.Nondeterministic, Threads: threads, Mode: edgedata.ModeAtomic,
				})
				if err != nil || !res.Converged {
					b.Fatalf("core-nondet: %v", err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/async/P%d", d, threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := algorithms.NewWCC()
				seed, err := core.NewEngine(g, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				a.Setup(seed)
				x, err := async.NewExecutor(g, async.Options{Threads: threads, Mode: edgedata.ModeAtomic})
				if err != nil {
					b.Fatal(err)
				}
				if err := x.LoadFrom(seed); err != nil {
					b.Fatal(err)
				}
				res, err := x.Run(a.Update)
				x.Close()
				if err != nil || !res.Converged {
					b.Fatalf("async: %v", err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/nosync/P%d", d, threads), func(b *testing.B) {
			a := algorithms.NewWCC()
			v, err := algorithms.NoSyncVerdict(a, g)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				seed, err := core.NewEngine(g, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				a.Setup(seed)
				x, err := async.NewNoSync(g, async.NoSyncOptions{
					Threads: threads, Mode: edgedata.ModeAtomic, Verdict: &v,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := x.LoadFrom(seed); err != nil {
					b.Fatal(err)
				}
				res, err := x.Run(a.Update)
				x.Close()
				if err != nil || !res.Converged {
					b.Fatalf("nosync: %v", err)
				}
			}
		})
	}
}
