// Cross-engine differential suite: the same eligible algorithm on the
// same graph must reach the byte-identical fixed point on every executor
// in the repository, with the sequential deterministic engine (DE) as the
// baseline and the independent sequential references as oracles. This is
// the paper's thesis as a single table:
//
//	{WCC, SSSP, BFS, k-core} × {core-nondet(lock), core-nondet(atomic),
//	async, nosync (work-stealing), shard (PSW), push (CAS),
//	hybrid (direction-optimizing)}   → identical converged values
//	PageRank × {core variants, nosync} → agreement within ε
//
// Three deliberate exclusions, asserted by TestCrossEngineCoverageManifest:
//
//   - shard × weighted SSSP: the PSW view's OutEdgeID returns
//     window-local value slots, not canonical edge indices, so an
//     algorithm that indexes an immutable side array by edge ID (SSSP's
//     Weights) reads the wrong weights out-of-core. BFS — unit weights,
//     where every index decodes to the same weight — is sound and IS
//     covered below.
//   - push × k-core: the h-index update gathers all neighbor estimates
//     at once; it has no expression as push's unary Relax(candidate,
//     current) monotone merge.
//   - hybrid × k-core: same structural reason — the hybrid engine runs
//     paired push/pull kernels built from the unary Message/Better merge,
//     which cannot express the h-index gather either.
//
// Graphs are seeded R-MAT (skewed) and banded (near-uniform, local), so
// both conflict regimes of the paper's evaluation are exercised. Only
// ModeLocked and ModeAtomic appear here — ModeAligned's benign races are
// compiled out under -race — so this file runs under the race detector.
package ndgraph_test

import (
	"context"
	"fmt"
	"math"
	"testing"

	"ndgraph/internal/algorithms"
	"ndgraph/internal/async"
	"ndgraph/internal/core"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/hybrid"
	"ndgraph/internal/push"
	"ndgraph/internal/sched"
	"ndgraph/internal/shard"
)

const diffThreads = 4

type diffGraph struct {
	name string
	g    *graph.Graph
	seed uint64
}

// diffGraphs generates the seeded graph battery: two R-MAT and two banded
// instances, all small enough that the full grid stays fast under -race.
func diffGraphs(t *testing.T) []diffGraph {
	t.Helper()
	var out []diffGraph
	for seed := uint64(0); seed < 2; seed++ {
		rm, err := gen.RMAT(240, 1500, gen.DefaultRMAT, 900+seed)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, diffGraph{fmt.Sprintf("rmat-%d", seed), rm, seed})
		bd, err := gen.Banded(200, 6, 16, 910+seed)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, diffGraph{fmt.Sprintf("banded-%d", seed), bd, seed})
	}
	return out
}

// diffCoreEngines is the grid of parallel core-engine configurations under
// test: the nondeterministic scheduler over both race-detector-safe
// atomicity modes.
func diffCoreEngines() []struct {
	name string
	opts core.Options
} {
	return []struct {
		name string
		opts core.Options
	}{
		{"core-nondet-lock", core.Options{Scheduler: sched.Nondeterministic, Threads: diffThreads, Mode: edgedata.ModeLocked}},
		{"core-nondet-atomic", core.Options{Scheduler: sched.Nondeterministic, Threads: diffThreads, Mode: edgedata.ModeAtomic}},
	}
}

// runCoreWords runs a on g under opts and returns the converged vertex
// words.
func runCoreWords(t *testing.T, g *graph.Graph, a algorithms.Algorithm, opts core.Options) []uint64 {
	t.Helper()
	e, res, err := algorithms.Run(a, g, opts)
	if err != nil || !res.Converged {
		t.Fatalf("%s: run: %v (converged=%v)", a.Name(), err, res.Converged)
	}
	return append([]uint64(nil), e.Vertices...)
}

// runAsyncWords seeds a barrier-free executor from a fresh deterministic
// engine's initial state and drains it to quiescence.
func runAsyncWords(t *testing.T, g *graph.Graph, a algorithms.Algorithm) []uint64 {
	t.Helper()
	seedEng, err := core.NewEngine(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a.Setup(seedEng)
	x, err := async.NewExecutor(g, async.Options{Threads: diffThreads, Mode: edgedata.ModeAtomic})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	if err := x.LoadFrom(seedEng); err != nil {
		t.Fatal(err)
	}
	res, err := x.Run(a.Update)
	if err != nil || !res.Converged {
		t.Fatalf("async %s: %v (converged=%v)", a.Name(), err, res.Converged)
	}
	return append([]uint64(nil), x.Vertices...)
}

// runNoSyncWords runs a through the work-stealing no-sync tier, admission
// gated by the algorithm's own static/probe eligibility verdict — the full
// production path: verdict, transplant, barrier-free drain.
func runNoSyncWords(t *testing.T, g *graph.Graph, a algorithms.Algorithm) []uint64 {
	t.Helper()
	v, err := algorithms.NoSyncVerdict(a, g)
	if err != nil {
		t.Fatal(err)
	}
	seedEng, err := core.NewEngine(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a.Setup(seedEng)
	x, err := async.NewNoSync(g, async.NoSyncOptions{Threads: diffThreads, Mode: edgedata.ModeAtomic, Verdict: &v})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	if err := x.LoadFrom(seedEng); err != nil {
		t.Fatal(err)
	}
	res, err := x.Run(a.Update)
	if err != nil || !res.Converged {
		t.Fatalf("nosync %s: %v (converged=%v)", a.Name(), err, res.Converged)
	}
	return append([]uint64(nil), x.Vertices...)
}

// runShardWords builds out-of-core storage for g, applies the
// algorithm-specific initial state, and runs the PSW engine.
func runShardWords(t *testing.T, g *graph.Graph, update core.UpdateFunc, init func(t *testing.T, st *shard.Storage, e *shard.Engine)) []uint64 {
	t.Helper()
	st, err := shard.Build(g, t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := shard.NewEngine(st, shard.Options{Threads: 2, Mode: edgedata.ModeAtomic})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	init(t, st, e)
	res, err := e.Run(update)
	if err != nil || !res.Converged {
		t.Fatalf("shard: %v (converged=%v)", err, res.Converged)
	}
	return append([]uint64(nil), st.Vertices...)
}

// runHybridWords runs a paired push/pull kernel on the direction-
// optimizing engine under an alternating direction policy, so every
// differential run genuinely crosses direction switches — the default
// Beamer policy only pulls for bottom-up kernels (BFS), which would leave
// the WCC and SSSP rows exercising nothing but the push sweep.
func runHybridWords(t *testing.T, g *graph.Graph, k algorithms.Kernel) []uint64 {
	t.Helper()
	e, err := hybrid.NewEngine(g, diffThreads)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Policy = func(s hybrid.Stats) hybrid.Direction { return hybrid.Direction(s.Iter % 2) }
	res, err := e.Run(context.Background(), k)
	if err != nil || !res.Converged {
		t.Fatalf("hybrid %s: %v (converged=%v)", k.Name, err, res.Converged)
	}
	return append([]uint64(nil), e.Vertices...)
}

func wordsToLabels(words []uint64) []uint32 {
	out := make([]uint32, len(words))
	for v, w := range words {
		out[v] = uint32(w)
	}
	return out
}

func wordsToFloats(words []uint64) []float64 {
	out := make([]float64, len(words))
	for v, w := range words {
		out[v] = edgedata.ToFloat64(w)
	}
	return out
}

func checkLabels(t *testing.T, name string, got, want []uint32) {
	t.Helper()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: vertex %d = %d, sequential DE fixed point %d", name, v, got[v], want[v])
		}
	}
}

// checkFloats demands bit-identical agreement: eligible monotone
// algorithms with absolute convergence have execution-model-independent
// fixed points, so even floating-point distances match exactly.
func checkFloats(t *testing.T, name string, got, want []float64) {
	t.Helper()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: vertex %d = %v, sequential DE fixed point %v", name, v, got[v], want[v])
		}
	}
}

// diffSource picks the highest-out-degree vertex so traversals reach a
// large fraction of the graph.
func diffSource(g *graph.Graph) uint32 {
	best, bestDeg := uint32(0), -1
	for v := uint32(0); int(v) < g.N(); v++ {
		if d := g.OutDegree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}

func TestCrossEngineDifferentialWCC(t *testing.T) {
	for _, gc := range diffGraphs(t) {
		t.Run(gc.name, func(t *testing.T) {
			g := gc.g
			want := wordsToLabels(runCoreWords(t, g, algorithms.NewWCC(), core.Options{Scheduler: sched.Deterministic}))
			// The DE baseline itself must match the union-find oracle.
			checkLabels(t, "core-det vs union-find", want, algorithms.ReferenceWCC(g))

			for _, ce := range diffCoreEngines() {
				checkLabels(t, ce.name, wordsToLabels(runCoreWords(t, g, algorithms.NewWCC(), ce.opts)), want)
			}
			checkLabels(t, "async", wordsToLabels(runAsyncWords(t, g, algorithms.NewWCC())), want)
			checkLabels(t, "nosync", wordsToLabels(runNoSyncWords(t, g, algorithms.NewWCC())), want)

			wcc := algorithms.NewWCC()
			got := runShardWords(t, g, wcc.Update, func(t *testing.T, st *shard.Storage, e *shard.Engine) {
				for v := range st.Vertices {
					st.Vertices[v] = uint64(v)
				}
				if err := st.FillValues(^uint64(0)); err != nil {
					t.Fatal(err)
				}
				e.Frontier().ScheduleAll()
			})
			checkLabels(t, "shard", wordsToLabels(got), want)

			labels, res, err := push.WCC(g, push.ModeCAS, diffThreads)
			if err != nil || !res.Converged {
				t.Fatalf("push: %v", err)
			}
			checkLabels(t, "push", labels, want)

			// hybrid runs WCC on the symmetrized graph, like push does
			// internally (Kernel.Undirected).
			checkLabels(t, "hybrid",
				wordsToLabels(runHybridWords(t, g.Undirected(), algorithms.WCCKernel())), want)
		})
	}
}

func TestCrossEngineDifferentialBFS(t *testing.T) {
	for _, gc := range diffGraphs(t) {
		t.Run(gc.name, func(t *testing.T) {
			g := gc.g
			src := diffSource(g)
			bfs := algorithms.NewBFS(g, src)
			want := wordsToFloats(runCoreWords(t, g, bfs, core.Options{Scheduler: sched.Deterministic}))
			checkFloats(t, "core-det vs dijkstra", want, algorithms.ReferenceSSSP(g, src, bfs.Weights))

			for _, ce := range diffCoreEngines() {
				checkFloats(t, ce.name, wordsToFloats(runCoreWords(t, g, algorithms.NewBFS(g, src), ce.opts)), want)
			}
			checkFloats(t, "async", wordsToFloats(runAsyncWords(t, g, algorithms.NewBFS(g, src))), want)
			checkFloats(t, "nosync", wordsToFloats(runNoSyncWords(t, g, algorithms.NewBFS(g, src))), want)

			// BFS is the shard-safe member of the SSSP family: unit
			// weights make the Weights array index-invariant, so the PSW
			// view's window-local edge IDs cannot misroute a lookup.
			shardBFS := algorithms.NewBFS(g, src)
			got := runShardWords(t, g, shardBFS.Update, func(t *testing.T, st *shard.Storage, e *shard.Engine) {
				infWord := edgedata.FromFloat64(math.Inf(1))
				for v := range st.Vertices {
					st.Vertices[v] = infWord
				}
				st.Vertices[src] = edgedata.FromFloat64(0)
				if err := st.FillValues(infWord); err != nil {
					t.Fatal(err)
				}
				e.Frontier().ScheduleNow(int(src))
			})
			checkFloats(t, "shard", wordsToFloats(got), want)

			dists, res, err := push.BFS(g, src, push.ModeCAS, diffThreads)
			if err != nil || !res.Converged {
				t.Fatalf("push: %v", err)
			}
			checkFloats(t, "push", dists, want)

			checkFloats(t, "hybrid",
				wordsToFloats(runHybridWords(t, g, algorithms.BFSKernel(src))), want)
		})
	}
}

func TestCrossEngineDifferentialSSSP(t *testing.T) {
	for _, gc := range diffGraphs(t) {
		t.Run(gc.name, func(t *testing.T) {
			g := gc.g
			src := diffSource(g)
			ref := algorithms.NewSSSP(g, src, gc.seed+7)
			want := wordsToFloats(runCoreWords(t, g, ref, core.Options{Scheduler: sched.Deterministic}))
			checkFloats(t, "core-det vs dijkstra", want, algorithms.ReferenceSSSP(g, src, ref.Weights))

			for _, ce := range diffCoreEngines() {
				checkFloats(t, ce.name, wordsToFloats(runCoreWords(t, g, algorithms.NewSSSP(g, src, gc.seed+7), ce.opts)), want)
			}
			checkFloats(t, "async", wordsToFloats(runAsyncWords(t, g, algorithms.NewSSSP(g, src, gc.seed+7))), want)
			checkFloats(t, "nosync", wordsToFloats(runNoSyncWords(t, g, algorithms.NewSSSP(g, src, gc.seed+7))), want)

			got, res, err := push.SSSP(g, src, ref.Weights, push.ModeCAS, diffThreads)
			if err != nil || !res.Converged {
				t.Fatalf("push: %v", err)
			}
			checkFloats(t, "push", got, want)

			checkFloats(t, "hybrid",
				wordsToFloats(runHybridWords(t, g, algorithms.SSSPKernel(src, ref.Weights))), want)
		})
	}
}

func TestCrossEngineDifferentialKCore(t *testing.T) {
	for _, gc := range diffGraphs(t) {
		t.Run(gc.name, func(t *testing.T) {
			g := gc.g
			want := wordsToLabels(runCoreWords(t, g, algorithms.NewKCore(), core.Options{Scheduler: sched.Deterministic}))
			checkLabels(t, "core-det vs peeling", want, algorithms.ReferenceKCore(g))

			for _, ce := range diffCoreEngines() {
				checkLabels(t, ce.name, wordsToLabels(runCoreWords(t, g, algorithms.NewKCore(), ce.opts)), want)
			}
			checkLabels(t, "async", wordsToLabels(runAsyncWords(t, g, algorithms.NewKCore())), want)
			checkLabels(t, "nosync", wordsToLabels(runNoSyncWords(t, g, algorithms.NewKCore())), want)

			kc := algorithms.NewKCore()
			got := runShardWords(t, g, kc.Update, func(t *testing.T, st *shard.Storage, e *shard.Engine) {
				for v := range st.Vertices {
					st.Vertices[v] = uint64(g.Degree(uint32(v)))
				}
				// Every edge word packs (src estimate, dst estimate),
				// both starting at the endpoint degrees — the same
				// initial publication KCore.Setup performs in-core.
				err := st.SetEdgeValues(func(src, dst uint32) uint64 {
					return uint64(g.Degree(src)) | uint64(g.Degree(dst))<<32
				})
				if err != nil {
					t.Fatal(err)
				}
				e.Frontier().ScheduleAll()
			})
			checkLabels(t, "shard", wordsToLabels(got), want)
		})
	}
}

// PageRank has a relative convergence condition, so converged vectors are
// ε-close rather than identical; every engine must land near the
// power-iteration oracle.
func TestCrossEngineDifferentialPageRank(t *testing.T) {
	for _, gc := range diffGraphs(t) {
		t.Run(gc.name, func(t *testing.T) {
			g := gc.g
			want := algorithms.ReferencePageRank(g, 0.85, 1e-12, 20000)
			const tol = 0.02
			check := func(name string, got []float64) {
				t.Helper()
				for v := range want {
					if d := got[v] - want[v]; d > tol || d < -tol {
						t.Fatalf("%s: rank[%d] = %v, reference %v", name, v, got[v], want[v])
					}
				}
			}
			engines := append(diffCoreEngines(), struct {
				name string
				opts core.Options
			}{"core-det", core.Options{Scheduler: sched.Deterministic}})
			for _, ce := range engines {
				pr := algorithms.NewPageRank(1e-7)
				e, res, err := algorithms.Run(pr, g, ce.opts)
				if err != nil || !res.Converged {
					t.Fatalf("%s: %v (converged=%v)", ce.name, err, res.Converged)
				}
				check(ce.name, pr.Ranks(e))
			}
			// The work-stealing tier: PageRank is Theorem-1 eligible
			// (RW-only conflicts) but converges approximately, so its
			// barrier-free fixed point is ε-close, not identical.
			check("nosync", wordsToFloats(runNoSyncWords(t, g, algorithms.NewPageRank(1e-7))))
		})
	}
}

// TestCrossEngineCoverageManifest pins the grid so a silently dropped
// engine or algorithm cannot pass review: 4 exact-agreement algorithms,
// 2 parallel core modes, 4 graph instances, and exactly the 3 documented
// exclusions (shard × weighted SSSP, push × k-core, hybrid × k-core) —
// see the package comment for why each is structural, not an omission.
func TestCrossEngineCoverageManifest(t *testing.T) {
	if n := len(diffCoreEngines()); n != 2 {
		t.Fatalf("parallel core engine variants = %d, want 2 (lock, atomic)", n)
	}
	if n := len(diffGraphs(t)); n != 4 {
		t.Fatalf("graph battery = %d instances, want 4 (2 seeds × {rmat, banded})", n)
	}
	// engine coverage per algorithm: core-det + 2 core-nondet + the others
	covered := map[string][]string{
		"wcc":   {"core-det", "core-nondet-lock", "core-nondet-atomic", "async", "nosync", "shard", "push", "hybrid"},
		"bfs":   {"core-det", "core-nondet-lock", "core-nondet-atomic", "async", "nosync", "shard", "push", "hybrid"},
		"sssp":  {"core-det", "core-nondet-lock", "core-nondet-atomic", "async", "nosync", "push", "hybrid"},
		"kcore": {"core-det", "core-nondet-lock", "core-nondet-atomic", "async", "nosync", "shard"},
	}
	excluded := map[string]string{
		"shard/sssp":   "OutEdgeID is window-local; canonical-edge-indexed Weights would misroute",
		"push/kcore":   "h-index gather is not expressible as a unary Relax merge",
		"hybrid/kcore": "paired kernels share the unary Message/Better merge, which cannot express the h-index gather",
	}
	for alg, engines := range covered {
		for _, e := range engines {
			if _, bad := excluded[e+"/"+alg]; bad {
				t.Fatalf("%s×%s is both covered and excluded", e, alg)
			}
		}
	}
	if len(excluded) != 3 {
		t.Fatalf("exclusions = %d, want exactly 3", len(excluded))
	}
}
