//go:build race

package ndgraph_test

// raceEnabled drops ModeAligned (benign races by design) from the Fig. 3
// benchmark grid under the race detector.
const raceEnabled = true
