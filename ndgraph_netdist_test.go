package ndgraph_test

import (
	"context"
	"math"
	"testing"
	"time"

	"ndgraph"
	"ndgraph/internal/algorithms"
)

// TestNetDistFacade runs a small real-transport distributed job through
// the facade and checks it against the shared-memory reference — the
// root-level acceptance test for DESIGN.md §12.
func TestNetDistFacade(t *testing.T) {
	spec := ndgraph.NetDistGraph{Kind: "rmat", N: 400, M: 2000, Seed: 3}
	g, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := ndgraph.NetDistRun(context.Background(), ndgraph.NetDistOptions{
		Workers:   3,
		Graph:     spec,
		Algo:      ndgraph.NetDistAlgo{Name: "sssp", Source: 0, WeightSeed: 17},
		RTO:       50 * time.Millisecond,
		Heartbeat: 20 * time.Millisecond,
		Timeout:   60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	weights := ndgraph.NewSSSP(g, 0, 17).Weights
	want := algorithms.ReferenceSSSP(g, 0, weights)
	got := res.Floats()
	for v := range want {
		if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
			t.Fatalf("vertex %d: dist %v, want %v", v, got[v], want[v])
		}
	}
}
