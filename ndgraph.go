// Package ndgraph is a shared-memory vertex-centric graph processing
// framework built to study — and let users exploit — the nondeterministic
// execution of graph algorithms, reproducing Shao, Hou, Ai, Zhang & Jin,
// "Is Your Graph Algorithm Eligible for Nondeterministic Execution?"
// (ICPP 2015).
//
// The framework executes pull-mode gather–compute–scatter update functions
// under four schedulers (deterministic Gauss–Seidel, nondeterministic
// block-parallel, synchronous/BSP, and chromatic), guards edge data with
// the paper's three per-operation atomicity methods (per-edge locks,
// architecture word-alignment, language atomics), ships the paper's four
// evaluated algorithms (PageRank, WCC, SSSP, BFS) plus SpMV and a
// deliberately ineligible greedy coloring, and answers the title question
// mechanically: Probe classifies an algorithm's potential edge conflicts
// and Advise applies the paper's Theorem 1/2 sufficient conditions.
//
// Quick start:
//
//	g, _ := ndgraph.BuildGraph(edges, ndgraph.GraphOptions{})
//	wcc := ndgraph.NewWCC()
//	eng, res, _ := ndgraph.Run(wcc, g, ndgraph.Options{
//		Scheduler: ndgraph.Nondeterministic,
//		Threads:   8,
//		Mode:      ndgraph.ModeAtomic,
//	})
//	labels := wcc.Components(eng)
//	_ = res // iterations, wall time, conflict counts
//
// This package is a facade: it re-exports the library's public surface
// from the internal implementation packages so downstream users need a
// single import.
package ndgraph

import (
	"ndgraph/internal/algorithms"
	"ndgraph/internal/async"
	"ndgraph/internal/autonomous"
	"ndgraph/internal/core"
	"ndgraph/internal/dist"
	"ndgraph/internal/edgedata"
	"ndgraph/internal/eligibility"
	"ndgraph/internal/fault"
	"ndgraph/internal/gen"
	"ndgraph/internal/graph"
	"ndgraph/internal/hybrid"
	"ndgraph/internal/loader"
	"ndgraph/internal/metrics"
	"ndgraph/internal/netdist"
	"ndgraph/internal/obs"
	"ndgraph/internal/push"
	"ndgraph/internal/sched"
	"ndgraph/internal/shard"
	"ndgraph/internal/trace"
)

// Graph types.
type (
	// Graph is the immutable dual-CSR directed graph.
	Graph = graph.Graph
	// Edge is one directed edge in builder input.
	Edge = graph.Edge
	// GraphOptions controls graph construction.
	GraphOptions = graph.Options
	// GraphStats summarizes a graph.
	GraphStats = graph.Stats
)

// Engine types.
type (
	// Engine is the barrier-based coordinated-scheduling engine.
	Engine = core.Engine
	// Options configures an Engine.
	Options = core.Options
	// Result reports a run's statistics.
	Result = core.Result
	// VertexView is the update function's window onto its vertex.
	VertexView = core.VertexView
	// UpdateFunc is a vertex update function f(v).
	UpdateFunc = core.UpdateFunc
)

// Algorithm types.
type (
	// Algorithm is the uniform algorithm interface.
	Algorithm = algorithms.Algorithm
	// PageRank is the fixed-point ranking algorithm (Theorem 1 class).
	PageRank = algorithms.PageRank
	// WCC is weakly connected components (Theorem 2 class).
	WCC = algorithms.WCC
	// SSSP is single-source shortest paths (also covers BFS).
	SSSP = algorithms.SSSP
	// SpMV is the Jacobi-style sparse fixed-point solve.
	SpMV = algorithms.SpMV
	// Coloring is the deliberately ineligible greedy coloring.
	Coloring = algorithms.Coloring
)

// Eligibility types.
type (
	// Properties declares an algorithm's theorem premises.
	Properties = eligibility.Properties
	// ConflictProfile counts read-write and write-write conflict edges.
	ConflictProfile = eligibility.ConflictProfile
	// Verdict is the advisor's answer to the title question.
	Verdict = eligibility.Verdict
	// StaticProfile records which edge sides an update function can
	// touch, as derived from its source (cmd/ndlint's conflictclass pass).
	StaticProfile = eligibility.StaticProfile
	// Certificate is a machine-verified admission certificate emitted by
	// ndlint's semantic passes (propcheck/kernelcheck/admitcheck). It is
	// tamper-evident: Verdict() re-derives the recorded gates and errors
	// on disagreement, Stale() detects source drift via the embedded
	// hash, and AdmitKernel() checks a hybrid kernel's name and flags.
	Certificate = eligibility.Certificate
	// KernelCertificate is the kernel-specific law record inside a
	// "kernel" Certificate (Better strict-order laws, flag obligations,
	// direction consistency).
	KernelCertificate = eligibility.KernelCert
)

// Admission certificates for the built-in algorithms and kernels,
// verified by `ndlint -cert` and embedded at build time
// (internal/algorithms/certs.json). CI re-derives them from source on
// every run, so a certificate that decodes is current.
var (
	// EligibilityCertificates returns every embedded certificate.
	EligibilityCertificates = algorithms.EligibilityCertificates
	// CertificateFor returns one embedded certificate by kind ("update"
	// or "kernel") and algorithm name, e.g. ("update", "wcc") or
	// ("kernel", "bfs"). Pass it to NoSyncOptions.Certificate or
	// HybridEngine.Certify for probe-free admission.
	CertificateFor = algorithms.CertificateFor
	// EncodeCertificates and DecodeCertificates are the JSON wire format
	// for certificate registries (what `ndlint -cert` emits and
	// `-certcheck` reads).
	EncodeCertificates = eligibility.EncodeCertificates
	DecodeCertificates = eligibility.DecodeCertificates
)

// Scheduler kinds (see internal/sched).
const (
	// Deterministic is sequential ascending-label Gauss–Seidel execution.
	Deterministic = sched.Deterministic
	// Nondeterministic is the paper's racy block-parallel execution.
	Nondeterministic = sched.Nondeterministic
	// Synchronous is BSP execution.
	Synchronous = sched.Synchronous
	// Chromatic is color-class parallel deterministic execution.
	Chromatic = sched.Chromatic
	// DIG is Galois-style deterministic interference-graph execution.
	DIG = sched.DIG
)

// Intra-iteration dispatch policies for Options.Dispatch.
const (
	// Static is the paper's Fig. 1 contiguous-label-block assignment.
	Static = sched.Static
	// Dynamic is chunked work stealing from a shared cursor.
	Dynamic = sched.Dynamic
)

// EdgeMode selects the edge-data atomicity method.
type EdgeMode = edgedata.Mode

// Edge-data atomicity modes (the paper's Section III methods).
const (
	// ModeSequential is unsynchronized single-thread storage.
	ModeSequential = edgedata.ModeSequential
	// ModeLocked is per-edge explicit locking.
	ModeLocked = edgedata.ModeLocked
	// ModeAligned is architecture word-alignment (benign races).
	ModeAligned = edgedata.ModeAligned
	// ModeAtomic is language atomic primitives.
	ModeAtomic = edgedata.ModeAtomic
)

// Graph construction and I/O.
var (
	// BuildGraph constructs a Graph from an edge list.
	BuildGraph = graph.Build
	// LoadGraph reads a graph file (.bin, .mtx, or edge list).
	LoadGraph = loader.LoadFile
	// SaveGraph writes a graph file (.bin or edge list).
	SaveGraph = loader.SaveFile
)

// RMATParams configures the R-MAT generator.
type RMATParams = gen.RMATParams

// DefaultRMAT is the Graph500-style R-MAT parameterization.
var DefaultRMAT = gen.DefaultRMAT

// Dataset identifies a paper Table I graph analog.
type Dataset = gen.Dataset

// The paper's four evaluation graphs (synthetic analogs).
const (
	// WebBerkStan models web-BerkStan.
	WebBerkStan = gen.WebBerkStan
	// WebGoogle models web-Google.
	WebGoogle = gen.WebGoogle
	// SocLiveJournal models soc-LiveJournal1.
	SocLiveJournal = gen.SocLiveJournal
	// Cage15 models cage15.
	Cage15 = gen.Cage15
)

// Generators.
var (
	// GenRMAT generates an R-MAT power-law graph.
	GenRMAT = gen.RMAT
	// GenErdosRenyi generates a uniform random graph.
	GenErdosRenyi = gen.ErdosRenyi
	// GenPreferentialAttachment generates a social-like graph.
	GenPreferentialAttachment = gen.PreferentialAttachment
	// GenGrid generates a 2D lattice.
	GenGrid = gen.Grid
	// Synthesize generates an analog of one of the paper's datasets.
	Synthesize = gen.Synthesize
)

// Engine and algorithms.
var (
	// NewEngine builds a barrier-based engine.
	NewEngine = core.NewEngine
	// Run executes an algorithm on a graph to convergence.
	Run = algorithms.Run
	// Probe classifies an algorithm's potential conflicts and returns the
	// eligibility verdict — the paper's title question, answered.
	Probe = algorithms.Probe
	// VerifyMonotonicity checks Theorem 2's premise at runtime by
	// observing every edge write of a deterministic run.
	VerifyMonotonicity = algorithms.VerifyMonotonicity
	// NonIncreasing / NonDecreasing are the monotonicity directions.
	NonIncreasing = algorithms.NonIncreasing
	NonDecreasing = algorithms.NonDecreasing
	// Advise applies the Theorem 1/2 sufficient conditions directly.
	Advise = eligibility.Advise
	// AdviseStatic applies them to a statically derived access profile —
	// a worst case over all graphs, so ELIGIBLE holds for every input.
	AdviseStatic = eligibility.AdviseStatic
	// StaticProfiles is the registry of the built-in algorithms'
	// update-function access profiles, keyed by Name().
	StaticProfiles = algorithms.StaticProfiles

	// NewPageRank builds PageRank with local threshold ε.
	NewPageRank = algorithms.NewPageRank
	// NewWCC builds weakly connected components.
	NewWCC = algorithms.NewWCC
	// NewSSSP builds single-source shortest paths with random weights.
	NewSSSP = algorithms.NewSSSP
	// NewBFS builds breadth-first search (unit-weight SSSP).
	NewBFS = algorithms.NewBFS
	// NewSpMV builds the contraction fixed-point solve.
	NewSpMV = algorithms.NewSpMV
	// NewKCore builds k-core decomposition.
	NewKCore = algorithms.NewKCore
	// NewLabelProp builds majority label propagation (not eligible).
	NewLabelProp = algorithms.NewLabelProp
	// NewColoring builds the ineligible greedy coloring demo.
	NewColoring = algorithms.NewColoring
)

// Result-variance metrics (Section V-C).
var (
	// RankOrder sorts vertices by descending score.
	RankOrder = metrics.RankOrder
	// DifferenceDegree is the paper's rank-divergence metric.
	DifferenceDegree = metrics.DifferenceDegree
)

// Out-of-core (GraphChi-style Parallel Sliding Windows) execution.
type (
	// ShardStorage is on-disk sharded graph storage.
	ShardStorage = shard.Storage
	// ShardEngine executes updates over sharded storage.
	ShardEngine = shard.Engine
	// ShardOptions configures a PSW run.
	ShardOptions = shard.Options
)

var (
	// BuildShards shards a graph onto disk.
	BuildShards = shard.Build
	// NewShardEngine binds a PSW executor to sharded storage.
	NewShardEngine = shard.NewEngine
)

// Robustness: fault injection, divergence watchdog, checkpointing.
type (
	// FaultPlan configures the seeded fault injector.
	FaultPlan = fault.Plan
	// FaultInjector corrupts edge operations per a FaultPlan; plug it into
	// Options.Inject (core), AsyncOptions.Inject, or ShardOptions.Inject.
	FaultInjector = fault.Injector
	// FaultStats tallies injected faults.
	FaultStats = fault.Stats
)

var (
	// NewFaultInjector builds a fault injector from a plan.
	NewFaultInjector = fault.NewInjector
	// ErrInjectedCrash is returned by a run killed by an injected crash.
	ErrInjectedCrash = fault.ErrCrash
	// ErrStalled is returned when the divergence watchdog
	// (Options.StallWindow) aborts a non-converging run.
	ErrStalled = core.ErrStalled
)

// DefaultMaxIters is the iteration cap engines apply when Options.MaxIters
// is unset — a backstop against algorithms that never converge.
const DefaultMaxIters = core.DefaultMaxIters

// Distributed-simulation execution (message passing over a lossy,
// reordering, duplicating network).
type (
	// DistPropagation declares a monotone message-passing computation.
	DistPropagation = dist.Propagation
	// DistOptions configures the simulated cluster.
	DistOptions = dist.Options
	// DistResult reports a distributed run.
	DistResult = dist.Result
)

var (
	// DistRun executes a propagation on the simulated cluster.
	DistRun = dist.Run
	// DistWCC runs distributed weakly connected components.
	DistWCC = dist.WCC
	// DistSSSP runs distributed single-source shortest paths.
	DistSSSP = dist.SSSP
)

// Real-transport distributed execution: worker processes on TCP with a
// supervising coordinator (heartbeats, checkpoint restarts, Theorem-2
// boundary repair) and frame-level fault injection (see DESIGN.md §12).
type (
	// NetDistOptions configures a real-transport distributed run.
	NetDistOptions = netdist.Options
	// NetDistResult reports a completed distributed run.
	NetDistResult = netdist.Result
	// NetDistGraph describes the input graph as a generative spec.
	NetDistGraph = netdist.GraphSpec
	// NetDistAlgo names the distributed algorithm and its parameters.
	NetDistAlgo = netdist.AlgoSpec
	// NetDistProxy injects drops/dups/delays/reorders/partitions on live
	// worker↔worker links.
	NetDistProxy = netdist.Proxy
	// NetDistProxyPlan configures per-frame fault probabilities.
	NetDistProxyPlan = netdist.ProxyPlan
	// NetDistLauncher abstracts worker process lifecycle (start/stop/kill).
	NetDistLauncher = netdist.Launcher
)

var (
	// NetDistRun executes one supervised distributed job end to end.
	NetDistRun = netdist.Run
	// NewNetDistProxy builds an empty fault proxy.
	NewNetDistProxy = netdist.NewProxy
	// NewLocalLauncher hosts workers as goroutines on loopback TCP.
	NewLocalLauncher = netdist.NewLocalLauncher
	// NewExecLauncher spawns real worker processes from an ndworker binary.
	NewExecLauncher = netdist.NewExecLauncher
	// RunNetDistWorker serves one worker on a listener (cmd/ndworker's body).
	RunNetDistWorker = netdist.RunWorker
)

// Observability: the zero-overhead-when-disabled telemetry layer. Attach
// one Observer to any number of engines (Options.Observer for core,
// AsyncOptions.Observer, ShardOptions.Observer, DistOptions.Observer, and
// the Observe methods of PushEngine / AutonomousEngine); events flow into
// per-engine counters, a ring buffer, and any attached sinks; serve live
// metrics with ServeTelemetry (-telemetry-addr on the CLIs).
type (
	// Observer collects telemetry events from engines. nil disables
	// collection at the cost of one pointer test per iteration.
	Observer = obs.Observer
	// ObserverOptions configures an Observer.
	ObserverOptions = obs.Options
	// TelemetryEvent is one per-iteration (or per-sample-window) sample.
	TelemetryEvent = obs.Event
	// TelemetrySink consumes emitted events (JSONL, expvar, custom).
	TelemetrySink = obs.Sink
	// TelemetryServer is a running /metrics + /debug/pprof endpoint.
	TelemetryServer = obs.Server
	// TelemetryEngineKind labels which executor emitted an event.
	TelemetryEngineKind = obs.EngineKind
	// TelemetryEngineStats is one engine's accumulated counter snapshot,
	// as returned by Observer.Stats and rendered by /metrics.
	TelemetryEngineStats = obs.EngineStats
	// TelemetryWindow is one closed time window of aggregated samples —
	// the unit of the /statusz residual curve (Observer.Windows).
	TelemetryWindow = obs.WindowStat
	// DelayClock measures staleness in barrier-free runs: per-worker epoch
	// counters stamped when a value is published and read back when it is
	// consumed, feeding a lock-free histogram of publish-to-read delays.
	// Engines attach one automatically when an Observer is set.
	DelayClock = obs.DelayClock
	// DelayHist is a merged staleness histogram snapshot (DelayClock.Hist).
	DelayHist = obs.DelayHist
	// DelaySnapshot is one engine's rendered staleness quantiles, as served
	// by /statusz and returned by Observer.DelaySnapshots.
	DelaySnapshot = obs.DelaySnapshot
	// ResidualEstimator accumulates per-commit value movement (striped,
	// allocation-free) — the measurement half of ε-aware stopping.
	ResidualEstimator = obs.ResidualEstimator
	// ResidualTotals is a ResidualEstimator snapshot.
	ResidualTotals = obs.ResidualTotals
)

var (
	// NewObserver builds an observability collector.
	NewObserver = obs.New
	// NewJSONLSink streams events as JSON lines to a writer.
	NewJSONLSink = obs.NewJSONLSink
	// ServeTelemetry serves /metrics, /events, /debug/vars, /statusz, and
	// /debug/pprof for an observer on the given address.
	ServeTelemetry = obs.Serve
	// NewDelayClock builds a standalone staleness clock (engines create
	// their own when observing; this is for custom executors).
	NewDelayClock = obs.NewDelayClock
	// NewResidualEstimator builds a striped residual accumulator.
	NewResidualEstimator = obs.NewResidualEstimator
)

// Execution-path record/replay and run-divergence diagnosis. A recorder
// attached to an engine (Options.Trace, AsyncOptions.Trace,
// ShardOptions.Trace, DistOptions.Trace, or the Trace methods of
// PushEngine / AutonomousEngine) captures the execution path; with
// EnableCommits it also logs every racy edge commit, which lets the core
// engine replay the run to a byte-identical fixed point (Lemmas 1–2 made
// executable). Traces serialize to the NDTR binary format and diff into a
// divergence report with a propagation-distance histogram.
type (
	// TraceRecorder records execution paths (Options.Trace).
	TraceRecorder = trace.Recorder
	// Trace is an immutable recorded run (events, commits, digest).
	Trace = trace.Trace
	// TraceMeta carries a trace's provenance (graph dims + KV pairs).
	TraceMeta = trace.Meta
	// TraceEvent is one recorded update.
	TraceEvent = trace.Event
	// TraceCommit is one recorded racy edge commit.
	TraceCommit = trace.Commit
	// TraceDiffReport is the canonical divergence report of two traces.
	TraceDiffReport = trace.DiffReport
	// TraceDHist is the propagation-distance histogram, split by the
	// paper's ≺ / ≻ / ∥ relations.
	TraceDHist = trace.DHist
	// ReplayReport summarizes a forced re-execution of a recorded run.
	ReplayReport = core.ReplayReport
)

var (
	// NewTraceRecorder returns a bounded execution-path recorder.
	NewTraceRecorder = trace.NewRecorder
	// WriteTrace serializes a trace in the NDTR binary format.
	WriteTrace = trace.WriteBinary
	// ReadTrace deserializes an NDTR binary trace.
	ReadTrace = trace.ReadBinary
	// DiffTraces computes the canonical divergence report of two traces.
	DiffTraces = trace.Diff
	// ErrCorruptTrace is returned by ReadTrace on framing/CRC damage.
	ErrCorruptTrace = trace.ErrCorruptTrace
	// ErrReplayDiverged is returned by Engine.ReplayTrace when the forced
	// replay does not reach the recorded fixed point.
	ErrReplayDiverged = core.ErrReplayDiverged
)

// Autonomous (priority-driven) scheduling — the paper's other scheduling
// category (Section I).
type (
	// AutonomousEngine executes priority-ordered updates.
	AutonomousEngine = autonomous.Engine
	// AutonomousScheduler is the priority queue updates post into.
	AutonomousScheduler = autonomous.Scheduler
)

var (
	// NewAutonomousEngine builds a priority-driven executor.
	NewAutonomousEngine = autonomous.NewEngine
	// AutonomousSSSP runs distance-ordered SSSP (Dijkstra as a schedule).
	AutonomousSSSP = autonomous.SSSP
	// DeltaPageRank runs residual-ordered PageRank.
	DeltaPageRank = autonomous.DeltaPageRank
)

// Extensions: barrier-free execution and push mode.
type (
	// AsyncExecutor is the pure asynchronous (barrier-free) executor.
	AsyncExecutor = async.Executor
	// AsyncOptions configures an AsyncExecutor.
	AsyncOptions = async.Options
	// NoSyncExecutor is the work-stealing barrier-free executor: per-worker
	// deques with randomized stealing, coalescing per-vertex scheduled
	// states, and distributed double-sweep termination detection. Admission
	// requires a Theorem-1/2 eligibility verdict (NoSyncOptions.Verdict).
	NoSyncExecutor = async.NoSync
	// NoSyncOptions configures a NoSyncExecutor.
	NoSyncOptions = async.NoSyncOptions
	// NoSyncResult summarizes a no-sync run (updates, steals, idle
	// transitions, convergence).
	NoSyncResult = async.NoSyncResult
	// PushEngine executes monotone push-mode computations.
	PushEngine = push.Engine
)

// Push-mode atomicity disciplines.
const (
	// PushModeCAS combines pushes with compare-and-swap retry loops.
	PushModeCAS = push.ModeCAS
	// PushModePlain combines pushes with racy read-test-write
	// (single-threaded use only).
	PushModePlain = push.ModePlain
)

var (
	// NewAsyncExecutor builds a barrier-free executor.
	NewAsyncExecutor = async.NewExecutor
	// NewNoSyncExecutor builds the work-stealing no-sync executor; it
	// refuses algorithms whose eligibility verdict is not covered by the
	// paper's Theorem 1 or 2.
	NewNoSyncExecutor = async.NewNoSync
	// NoSyncVerdict derives the admission verdict for an algorithm: the
	// static profile for registered algorithms, an instrumented probe
	// otherwise.
	NoSyncVerdict = algorithms.NoSyncVerdict
	// NewPushEngine builds a push-mode engine.
	NewPushEngine = push.NewEngine
	// PushBFS runs push-mode BFS.
	PushBFS = push.BFS
	// PushSSSP runs push-mode SSSP.
	PushSSSP = push.SSSP
	// PushWCC runs push-mode WCC.
	PushWCC = push.WCC
)

// Direction-optimizing hybrid execution: per-iteration push/pull choice
// over paired kernels (Beamer-style frontier-density thresholds).
type (
	// HybridEngine chooses push or pull at every iteration barrier.
	HybridEngine = hybrid.Engine
	// HybridDirection is the per-iteration traversal direction.
	HybridDirection = hybrid.Direction
	// HybridStats is the barrier snapshot a HybridPolicy decides from.
	HybridStats = hybrid.Stats
	// HybridPolicy chooses the direction for one iteration.
	HybridPolicy = hybrid.Policy
	// HybridResult summarizes a hybrid run, including the direction
	// sequence (SwitchTrace).
	HybridResult = hybrid.Result
	// Kernel is a paired push/pull monotone vertex program.
	Kernel = algorithms.Kernel
)

// Hybrid traversal directions.
const (
	// HybridPush relaxes out-edges of the scheduled set.
	HybridPush = hybrid.Push
	// HybridPull gathers from scheduled in-neighbors.
	HybridPull = hybrid.Pull
)

var (
	// NewHybridEngine builds a direction-optimizing engine.
	NewHybridEngine = hybrid.NewEngine
	// HybridBeamerPolicy builds the classic threshold policy with
	// hysteresis; alpha or beta <= 0 select the Beamer defaults.
	HybridBeamerPolicy = hybrid.BeamerPolicy
	// WCCKernel, BFSKernel, and SSSPKernel are the paired push/pull
	// kernels of the registry in internal/algorithms.
	WCCKernel  = algorithms.WCCKernel
	BFSKernel  = algorithms.BFSKernel
	SSSPKernel = algorithms.SSSPKernel
)
