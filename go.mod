module ndgraph

go 1.22
